"""Tests for the dense interior-point QP solver."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.qp import solve_qp_box_eq
from repro.utils.exceptions import QPSolverError


def kkt_check(q, d, a, b, lb, ub, x, tol=1e-6):
    """Verify KKT conditions of a candidate box+equality QP solution."""
    assert np.abs(a @ x - b).max(initial=0.0) < tol, "primal equality"
    assert np.all(x >= lb - tol) and np.all(x <= ub + tol), "bounds"
    # Stationarity on strictly-inside coordinates: grad ⟂ null(A) restricted.
    # The interior-point solver approaches active bounds to O(sqrt(tol)), so
    # the active-set classification needs a margin well above that distance;
    # a coordinate within 1e-5 of its bound is treated as active (its
    # multiplier absorbs the gradient there).
    grad = q @ x + d
    inside = (x > lb + 1e-5) & (x < ub - 1e-5)
    if a.shape[0]:
        y, *_ = np.linalg.lstsq(a[:, inside].T, -grad[inside], rcond=None)
        resid = grad[inside] + a[:, inside].T @ y
    else:
        resid = grad[inside]
    assert np.abs(resid).max(initial=0.0) < 2e-4, "stationarity"


class TestBasics:
    def test_unconstrained_box(self):
        """No equality rows: solution is the clipped unconstrained minimum."""
        q = 2.0 * np.eye(3)
        d = np.array([-2.0, -10.0, 2.0])
        lb = np.array([-1.0, -1.0, -1.0])
        ub = np.array([1.0, 1.0, 1.0])
        r = solve_qp_box_eq(q, d, np.zeros((0, 3)), np.zeros(0), lb, ub)
        assert r.converged
        # Coordinates 1 and 3 are *degenerately* active (zero multiplier), so
        # interior-point accuracy there is O(sqrt(tol)).
        np.testing.assert_allclose(r.x, [1.0, 1.0, -1.0], atol=1e-4)

    def test_equality_only_closed_form(self):
        q = np.eye(2)
        d = np.zeros(2)
        a = np.array([[1.0, 1.0]])
        b = np.array([2.0])
        lb = np.full(2, -np.inf)
        ub = np.full(2, np.inf)
        r = solve_qp_box_eq(q, d, a, b, lb, ub)
        assert r.converged and r.iterations == 1
        np.testing.assert_allclose(r.x, [1.0, 1.0], atol=1e-9)

    def test_active_bound_with_equality(self):
        """min ||x||^2 s.t. x1+x2=2, x1<=0.5 -> x=(0.5, 1.5)."""
        r = solve_qp_box_eq(
            np.eye(2),
            np.zeros(2),
            np.array([[1.0, 1.0]]),
            np.array([2.0]),
            np.array([-np.inf, -np.inf]),
            np.array([0.5, np.inf]),
        )
        assert r.converged
        np.testing.assert_allclose(r.x, [0.5, 1.5], atol=1e-6)

    def test_fixed_variables(self):
        """lb == ub fixes a coordinate; the rest re-solves consistently."""
        r = solve_qp_box_eq(
            np.eye(2),
            np.zeros(2),
            np.array([[1.0, 1.0]]),
            np.array([3.0]),
            np.array([1.0, -np.inf]),
            np.array([1.0, np.inf]),
        )
        assert r.converged
        np.testing.assert_allclose(r.x, [1.0, 2.0], atol=1e-6)

    def test_all_fixed_consistent(self):
        r = solve_qp_box_eq(
            np.eye(2), np.zeros(2),
            np.array([[1.0, 1.0]]), np.array([3.0]),
            np.array([1.0, 2.0]), np.array([1.0, 2.0]),
        )
        assert r.converged
        np.testing.assert_allclose(r.x, [1.0, 2.0])

    def test_all_fixed_inconsistent_raises(self):
        with pytest.raises(QPSolverError, match="violated"):
            solve_qp_box_eq(
                np.eye(2), np.zeros(2),
                np.array([[1.0, 1.0]]), np.array([99.0]),
                np.array([1.0, 2.0]), np.array([1.0, 2.0]),
            )

    def test_inverted_bounds_raise(self):
        with pytest.raises(QPSolverError, match="inconsistent bounds"):
            solve_qp_box_eq(
                np.eye(1), np.zeros(1), np.zeros((0, 1)), np.zeros(0),
                np.array([1.0]), np.array([0.0]),
            )


@st.composite
def random_projection_qp(draw):
    """Random feasible projection QPs: Q=I, d=-v, with a known interior
    feasible point so the constraint set is nonempty."""
    n = draw(st.integers(2, 7))
    m = draw(st.integers(0, 3))
    a = draw(arrays(np.float64, (m, n), elements=st.floats(-2, 2, allow_nan=False)))
    x_feas = draw(arrays(np.float64, (n,), elements=st.floats(-1, 1, allow_nan=False)))
    b = a @ x_feas
    lb = x_feas - draw(
        arrays(np.float64, (n,), elements=st.floats(0.1, 2, allow_nan=False))
    )
    ub = x_feas + draw(
        arrays(np.float64, (n,), elements=st.floats(0.1, 2, allow_nan=False))
    )
    v = draw(arrays(np.float64, (n,), elements=st.floats(-3, 3, allow_nan=False)))
    return v, a, b, lb, ub


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_projection_qp())
    def test_kkt_conditions_hold(self, prob):
        v, a, b, lb, ub = prob
        # Row-reduce A first (the solver's contract requires full row rank).
        from repro.decomposition.rowreduce import reduced_row_echelon
        from repro.utils.exceptions import InfeasibleError

        try:
            ar, br, _ = reduced_row_echelon(a, b)
        except InfeasibleError:
            # Near-degenerate draws (a numerically-zero row with a tiny
            # nonzero rhs) are declared inconsistent by the row reduction;
            # the KKT property is about feasible systems only.
            assume(False)
        # Same conditioning caveat as test_projection: near-zero pivots
        # inflate the reduced system by ~1e7, where the fixed KKT
        # tolerance is unreachable in the iteration budget.
        assume(ar.size == 0 or np.abs(ar).max() < 1e4)
        n = len(v)
        r = solve_qp_box_eq(np.eye(n), -v, ar, br, lb, ub)
        assert r.converged
        kkt_check(np.eye(n), -v, ar, br, lb, ub, r.x)

    @settings(max_examples=25, deadline=None)
    @given(random_projection_qp())
    def test_objective_not_worse_than_feasible_candidates(self, prob):
        """The returned minimizer beats clipped feasible probes."""
        v, a, b, lb, ub = prob
        from repro.decomposition.rowreduce import reduced_row_echelon
        from repro.utils.exceptions import InfeasibleError

        try:
            ar, br, _ = reduced_row_echelon(a, b)
        except InfeasibleError:
            assume(False)  # same near-degenerate draws as above
        assume(ar.size == 0 or np.abs(ar).max() < 1e4)  # same conditioning caveat
        n = len(v)
        r = solve_qp_box_eq(np.eye(n), -v, ar, br, lb, ub)
        obj = 0.5 * r.x @ r.x - v @ r.x
        rng = np.random.default_rng(0)
        for _ in range(5):
            cand = np.clip(rng.uniform(lb, ub), lb, ub)
            if ar.shape[0] and np.abs(ar @ cand - br).max() > 1e-8:
                continue  # candidate infeasible; skip
            cand_obj = 0.5 * cand @ cand - v @ cand
            assert obj <= cand_obj + 1e-6
