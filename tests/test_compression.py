"""Tests for lossy communication compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import ADMMConfig, SolverFreeADMM
from repro.parallel import (
    CompressedSolverFreeADMM,
    ErrorFeedback,
    TopKCompressor,
    UniformQuantizer,
)


class TestTopK:
    def test_keeps_largest(self):
        msg = TopKCompressor(0.5).compress(np.array([1.0, -5.0, 0.1, 3.0]))
        np.testing.assert_array_equal(msg.values, [0.0, -5.0, 0.0, 3.0])

    def test_fraction_one_is_identity(self, rng):
        v = rng.standard_normal(20)
        msg = TopKCompressor(1.0).compress(v)
        np.testing.assert_array_equal(msg.values, v)
        assert msg.nbytes == 8 * 20

    def test_bytes_counted_per_kept_entry(self):
        msg = TopKCompressor(0.25).compress(np.arange(16.0))
        assert msg.nbytes == 12 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKCompressor(0.0)
        with pytest.raises(ValueError):
            TopKCompressor(1.5)

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, 32, elements=st.floats(-10, 10, allow_nan=False)))
    def test_contraction_property(self, v):
        """Top-k is a contraction: ||v - C(v)|| <= ||v||."""
        msg = TopKCompressor(0.3).compress(v)
        assert np.linalg.norm(v - msg.values) <= np.linalg.norm(v) + 1e-12


class TestQuantizer:
    def test_constant_vector_exact(self):
        v = np.full(7, 3.3)
        msg = UniformQuantizer(4).compress(v)
        np.testing.assert_allclose(msg.values, v)

    def test_endpoints_exact(self, rng):
        v = rng.uniform(-2, 5, 50)
        msg = UniformQuantizer(8).compress(v)
        assert msg.values.min() == pytest.approx(v.min())
        assert msg.values.max() == pytest.approx(v.max())

    def test_error_bounded_by_step(self, rng):
        v = rng.uniform(0, 1, 100)
        bits = 6
        msg = UniformQuantizer(bits).compress(v)
        step = (v.max() - v.min()) / ((1 << bits) - 1)
        assert np.max(np.abs(msg.values - v)) <= step / 2 + 1e-12

    def test_bytes(self):
        msg = UniformQuantizer(4).compress(np.zeros(100))
        assert msg.nbytes == (4 * 100 + 7) // 8 + 16

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformQuantizer(0)
        with pytest.raises(ValueError):
            UniformQuantizer(17)


class TestErrorFeedback:
    def test_residual_reinjected(self):
        ef = ErrorFeedback(TopKCompressor(0.5))
        v = np.array([10.0, 1.0])
        first = ef.compress(v)
        np.testing.assert_array_equal(first.values, [10.0, 0.0])
        # The dropped entry returns in the next round's memory.
        second = ef.compress(np.zeros(2))
        assert second.values[1] == pytest.approx(1.0)

    def test_reset_clears_memory(self):
        ef = ErrorFeedback(TopKCompressor(0.5))
        ef.compress(np.array([10.0, 1.0]))
        ef.reset()
        msg = ef.compress(np.zeros(2))
        np.testing.assert_array_equal(msg.values, 0.0)

    def test_cumulative_error_bounded(self, rng):
        """With EF the *cumulative* transmitted signal tracks the cumulative
        input (memory holds the difference)."""
        ef = ErrorFeedback(TopKCompressor(0.25))
        total_in = np.zeros(16)
        total_out = np.zeros(16)
        for _ in range(50):
            v = rng.standard_normal(16)
            total_in += v
            total_out += ef.compress(v).values
        np.testing.assert_allclose(total_in, total_out + ef._memory, atol=1e-9)


class TestCompressedSolve:
    def test_identity_compressor_matches_plain(self, small_dec):
        cfg = ADMMConfig(max_iter=200)
        # The compressor round-trips host fp64 payloads, so bit-level parity
        # with the plain solver only holds under the fp64 backend.
        plain = SolverFreeADMM(small_dec, cfg, backend="numpy64").solve()
        comp = CompressedSolverFreeADMM(
            small_dec, TopKCompressor(1.0), cfg, backend="numpy64"
        )
        res = comp.solve()
        np.testing.assert_allclose(res.x, plain.x, atol=1e-12)
        assert comp.compression_ratio == pytest.approx(1.0)

    def test_quantized_converges_with_savings(self, small_dec, small_ref):
        comp = CompressedSolverFreeADMM(
            small_dec,
            ErrorFeedback(UniformQuantizer(6)),
            ADMMConfig(max_iter=60000, record_history=False),
        )
        res = comp.solve()
        assert res.converged
        assert small_ref.compare_objective(res.objective) < 2e-2
        assert comp.compression_ratio > 5.0

    def test_topk_converges_with_more_iterations(self, small_dec):
        cfg = ADMMConfig(max_iter=120000, record_history=False)
        # The bytes-saved claim is against the fp64 wire format — an fp32 raw
        # baseline halves the denominator and the ratio target with it.
        plain = SolverFreeADMM(small_dec, cfg, backend="numpy64").solve()
        comp = CompressedSolverFreeADMM(
            small_dec, ErrorFeedback(TopKCompressor(0.4)), cfg, backend="numpy64"
        )
        res = comp.solve()
        assert res.converged
        assert res.iterations >= plain.iterations  # compression costs rounds
        assert comp.compression_ratio > 1.3

    def test_bytes_accounting_reset_between_solves(self, small_dec):
        comp = CompressedSolverFreeADMM(
            small_dec, TopKCompressor(0.5), ADMMConfig(max_iter=10)
        )
        comp.solve()
        first = comp.bytes_sent
        comp.solve()
        assert comp.bytes_sent == first

    def test_rejects_balancing(self, small_dec):
        with pytest.raises(ValueError, match="fixed rho"):
            CompressedSolverFreeADMM(
                small_dec, TopKCompressor(0.5), ADMMConfig(residual_balancing=True)
            )
