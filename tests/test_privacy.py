"""Tests for the differentially private consensus extension."""

import math

import numpy as np
import pytest

from repro.core import (
    ADMMConfig,
    PrivacyAccountant,
    PrivacyConfig,
    PrivateSolverFreeADMM,
    SolverFreeADMM,
)


class TestPrivacyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyConfig(clip=0.0)
        with pytest.raises(ValueError):
            PrivacyConfig(sigma=-1.0)

    def test_rho_per_release(self):
        cfg = PrivacyConfig(clip=2.0, sigma=1.0)
        assert cfg.rho_zcdp_per_release() == pytest.approx(2.0)

    def test_zero_sigma_infinite_cost(self):
        assert math.isinf(PrivacyConfig(clip=1.0, sigma=0.0).rho_zcdp_per_release())


class TestAccountant:
    def test_composition_additive(self):
        acc = PrivacyAccountant(rho_per_release=0.01)
        acc.record(10)
        acc.record(5)
        assert acc.rho_total == pytest.approx(0.15)

    def test_epsilon_conversion(self):
        acc = PrivacyAccountant(rho_per_release=0.5, releases=1)
        eps = acc.epsilon(delta=1e-6)
        assert eps == pytest.approx(0.5 + 2 * math.sqrt(0.5 * math.log(1e6)))

    def test_epsilon_validates_delta(self):
        acc = PrivacyAccountant(rho_per_release=0.1, releases=1)
        with pytest.raises(ValueError):
            acc.epsilon(delta=0.0)

    def test_epsilon_monotone_in_releases(self):
        a1 = PrivacyAccountant(0.01, releases=10)
        a2 = PrivacyAccountant(0.01, releases=100)
        assert a2.epsilon() > a1.epsilon()


class TestPrivateSolve:
    def test_zero_noise_huge_clip_matches_plain(self, small_dec):
        """With sigma=0 and a non-binding clip, the private solver must
        reproduce Algorithm 1 exactly."""
        cfg = ADMMConfig(max_iter=200)
        # Bit-level parity is an fp64 property — pin both backends.
        plain = SolverFreeADMM(small_dec, cfg, backend="numpy64").solve()
        private = PrivateSolverFreeADMM(
            small_dec, PrivacyConfig(clip=1e6, sigma=0.0), cfg, backend="numpy64"
        ).solve()
        np.testing.assert_allclose(private.x, plain.x, atol=1e-12)
        np.testing.assert_allclose(private.z, plain.z, atol=1e-12)

    def test_noise_floor_degrades_gracefully(self, small_dec, small_ref):
        """More noise -> worse objective, but small noise stays close."""
        gaps = []
        for sigma in (1e-5, 1e-3):
            res = PrivateSolverFreeADMM(
                small_dec,
                PrivacyConfig(clip=1.0, sigma=sigma, seed=1),
                ADMMConfig(max_iter=15000, record_history=False),
            ).solve()
            gaps.append(small_ref.compare_objective(res.objective))
        assert gaps[0] < gaps[1]
        assert gaps[0] < 5e-3

    def test_accountant_tracks_releases(self, small_dec):
        solver = PrivateSolverFreeADMM(
            small_dec,
            PrivacyConfig(clip=1.0, sigma=1e-4),
            ADMMConfig(max_iter=50, record_history=False),
        )
        solver.solve()
        assert solver.accountant.releases == 50 * small_dec.n_components

    def test_reproducible_given_seed(self, small_dec):
        def run():
            return PrivateSolverFreeADMM(
                small_dec,
                PrivacyConfig(clip=1.0, sigma=1e-4, seed=7),
                ADMMConfig(max_iter=100, record_history=False),
            ).solve()

        np.testing.assert_array_equal(run().x, run().x)

    def test_clipping_bounds_update_norm(self, small_dec, rng):
        solver = PrivateSolverFreeADMM(
            small_dec, PrivacyConfig(clip=0.05, sigma=0.0), ADMMConfig()
        )
        z_prev = rng.standard_normal(small_dec.n_local)
        z_new = z_prev + rng.standard_normal(small_dec.n_local)
        out = solver._privatize(z_new, z_prev)
        for s in range(small_dec.n_components):
            sl = small_dec.component_slice(s)
            assert np.linalg.norm(out[sl] - z_prev[sl]) <= 0.05 + 1e-12

    def test_rejects_balancing(self, small_dec):
        with pytest.raises(ValueError, match="fixed rho"):
            PrivateSolverFreeADMM(
                small_dec,
                PrivacyConfig(),
                ADMMConfig(residual_balancing=True),
            )
