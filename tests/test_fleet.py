"""Fleet serving tests: affinity, spill, backpressure, breaker routing,
and the kill-one-worker failover-equivalence guarantee (docs/SERVING.md,
fleet section).

The failover tests run the engine with ``warm_start=False``: cold-start
stacked solves are batch-composition-invariant, so a request's objective
is bit-identical no matter which worker (or which retry of the routing)
serves it — which is what lets the faulted run be compared to the
fault-free run scenario for scenario, exactly.
"""

import pytest

from repro.fleet import (
    FleetConfig,
    FleetFrontend,
    FleetSaturatedError,
    WorkerSpec,
    generate_mixed_scenarios,
)
from repro.fleet.worker import SimWorker, WorkerQueueFull
from repro.resilience import FaultPlan, WorkerCrash
from repro.serve import (
    STATUS_CONVERGED,
    STATUS_ERROR,
    STATUS_REJECTED,
    OPFRequest,
    ScenarioEngine,
)

#: Feeders whose topology keys split across both workers of a 2-ring
#: (pinned by the routing goldens; ieee13 and :20:2 land on w1, the
#: other two on w0).
FEEDERS = ["ieee13", "synthetic:20:0", "synthetic:20:2", "synthetic:20:9"]


def mixed(count, seed=7):
    return generate_mixed_scenarios(FEEDERS, count, seed=seed)


class TestSingleWorkerParity:
    def test_one_worker_fleet_matches_plain_engine_exactly(self):
        """A 1-worker fleet is the engine plus routing bookkeeping — same
        batches, same warm-start history, bit-identical objectives."""
        reqs_a = mixed(8)
        reqs_b = mixed(8)
        engine = ScenarioEngine(max_batch=4)
        direct = engine.serve(reqs_a)
        fleet = FleetFrontend(FleetConfig(n_workers=1, max_batch=4))
        routed = fleet.serve(reqs_b)
        assert [r.request_id for r in routed] == [r.request_id for r in direct]
        assert [r.status for r in routed] == [r.status for r in direct]
        assert [r.objective for r in routed] == [r.objective for r in direct]
        assert [r.iterations for r in routed] == [r.iterations for r in direct]


class TestAffinity:
    def test_every_topology_sticks_to_its_ring_owner(self):
        fleet = FleetFrontend(FleetConfig(n_workers=2, max_batch=4))
        reqs = mixed(12)
        responses = fleet.serve(reqs)
        assert all(r.status == STATUS_CONVERGED for r in responses)
        snap = fleet.snapshot()
        assert snap["fleet.accepted"] == 12
        assert "fleet.affinity_miss" not in snap  # counter never created
        # Each worker built plans only for the topologies it owns: 4
        # topologies split 2/2 (pinned by the routing goldens).
        for wid, worker in fleet.workers.items():
            owned = {
                r.topology_key()
                for r in reqs
                if fleet.ring.route(r.topology_key()) == wid
            }
            assert set(worker.engine.plans) == owned
            assert len(owned) == 2

    def test_warm_start_cache_stays_hot_per_worker(self):
        """Affinity means repeat scenarios warm-start on their worker."""
        fleet = FleetFrontend(FleetConfig(n_workers=2, max_batch=2))
        first = fleet.serve(mixed(4))
        again = fleet.serve(mixed(4))  # same seed -> same scenarios
        assert all(not r.warm_started for r in first)
        assert all(r.warm_started for r in again)


class TestSpillAndBackpressure:
    def test_full_worker_spills_to_next_preference(self):
        """With a queue bound of 1 per worker, a burst on one topology
        overflows its affinity worker and spills to the other instead of
        bouncing."""
        fleet = FleetFrontend(
            FleetConfig(n_workers=2, queue_size=1, max_batch=1)
        )
        reqs = [
            OPFRequest(request_id=f"b{i}", feeder="ieee13", load_scale=1 + 0.01 * i)
            for i in range(2)
        ]
        assert fleet.submit(reqs[0]) is None
        assert fleet.submit(reqs[1]) is None  # spilled, not rejected
        snap = fleet.snapshot()
        assert snap["fleet.spilled"] == 1
        assert snap["fleet.affinity_miss"] == 1
        responses = fleet.run()
        assert {r.status for r in responses} == {STATUS_CONVERGED}

    def test_saturated_fleet_rejects_with_structured_backpressure(self):
        fleet = FleetFrontend(
            FleetConfig(n_workers=2, queue_size=1, max_batch=1)
        )
        reqs = [
            OPFRequest(request_id=f"b{i}", feeder="ieee13", load_scale=1 + 0.01 * i)
            for i in range(3)
        ]
        assert fleet.submit(reqs[0]) is None
        assert fleet.submit(reqs[1]) is None
        rejection = fleet.submit(reqs[2])
        assert rejection is not None and rejection.status == STATUS_REJECTED
        assert "saturated" in rejection.error
        assert fleet.snapshot()["fleet.rejected"] == 1
        # The queued work still completes.
        assert {r.status for r in fleet.run()} == {STATUS_CONVERGED}

    def test_saturated_error_is_structured(self):
        exc = FleetSaturatedError("abc123", -1.5, {"w0": 4, "w1": 4})
        assert exc.retry_after_s == 0.0  # clamped, like QueueFullError
        assert exc.queue_depths == {"w0": 4, "w1": 4}
        assert "abc123" in str(exc)

    def test_worker_queue_full_clamps_retry_hint(self):
        exc = WorkerQueueFull("w0", 4, 4, retry_after_s=-0.3)
        assert exc.retry_after_s == 0.0


class TestFailoverEquivalence:
    def test_kill_one_worker_loses_nothing_and_matches_fault_free(self):
        """The acceptance property: a seeded mid-run worker crash loses no
        accepted request, and every re-routed response is bit-identical
        to the fault-free run's (cold-start solves are placement-
        invariant)."""
        reqs = mixed(12)
        baseline = FleetFrontend(
            FleetConfig(n_workers=2, warm_start=False, max_batch=4)
        ).serve(reqs)
        assert {r.status for r in baseline} == {STATUS_CONVERGED}

        # w0 owns 2 of the 4 topologies -> 6 requests in batches of 3;
        # the crash point lands between its first and second batch.
        plan = FaultPlan(seed=1, faults=(WorkerCrash(worker="w0", after_served=3),))
        faulted_fleet = FleetFrontend(
            FleetConfig(n_workers=2, warm_start=False, max_batch=4),
            fault_plan=plan,
        )
        faulted = faulted_fleet.serve(reqs)

        base_by_id = {r.request_id: r for r in baseline}
        fault_by_id = {r.request_id: r for r in faulted}
        assert set(base_by_id) == set(fault_by_id)  # nothing lost
        for rid, base in base_by_id.items():
            assert fault_by_id[rid].status == base.status
            assert fault_by_id[rid].objective == base.objective  # exact

        snap = faulted_fleet.snapshot()
        assert snap["fleet.worker_deaths"] == 1
        assert snap["fleet.rerouted"] >= 1
        assert not faulted_fleet.workers["w0"].alive
        # The survivor served everything the dead worker left behind.
        assert snap["workers"]["w1"]["worker.served"] == 12 - 3

    def test_crash_before_serving_anything(self):
        """``after_served=0`` kills the worker on first dispatch: its
        whole queue fails over."""
        reqs = mixed(8)
        plan = FaultPlan(seed=1, faults=(WorkerCrash(worker="w1", after_served=0),))
        fleet = FleetFrontend(
            FleetConfig(n_workers=2, warm_start=False, max_batch=4),
            fault_plan=plan,
        )
        responses = fleet.serve(reqs)
        assert len(responses) == 8
        assert {r.status for r in responses} == {STATUS_CONVERGED}
        assert fleet.snapshot()["workers"]["w0"]["worker.served"] == 8

    def test_kill_worker_hook_mid_run(self):
        """`kill_worker` (the CLI/ops chaos path) triggers the same
        failover as a seeded crash."""
        reqs = mixed(8)
        fleet = FleetFrontend(FleetConfig(n_workers=2, warm_start=False, max_batch=2))
        rejections = [r for r in map(fleet.submit, reqs) if r is not None]
        assert not rejections
        fleet.poll()  # one batch per worker
        fleet.kill_worker("w0")
        responses = fleet.run()
        done = len(fleet.responses)
        assert done == 8 and {r.status for r in fleet.responses} == {STATUS_CONVERGED}
        assert fleet.snapshot()["fleet.worker_deaths"] == 1
        assert responses  # run() returned the post-kill completions

    def test_total_fleet_loss_answers_honestly(self):
        reqs = mixed(4)
        plan = FaultPlan(
            seed=1,
            faults=(
                WorkerCrash(worker="w0", after_served=0),
                WorkerCrash(worker="w1", after_served=0),
            ),
        )
        fleet = FleetFrontend(
            FleetConfig(n_workers=2, warm_start=False, max_batch=2), fault_plan=plan
        )
        responses = fleet.serve(reqs)
        assert len(responses) == 4
        assert {r.status for r in responses} == {STATUS_ERROR}
        assert all("no survivors" in r.error for r in responses)


class TestBreakerRouting:
    def test_failing_worker_is_skipped_until_recovery(self):
        """Error responses trip the worker's breaker; routing then skips
        it (affinity traded for availability) until the recovery window
        passes on the injected clock."""
        clock_now = [0.0]
        fleet = FleetFrontend(
            FleetConfig(
                n_workers=2,
                max_batch=1,
                breaker_failure_threshold=1,
                breaker_recovery_s=30.0,
            ),
            clock=lambda: clock_now[0],
        )
        # ieee13's affinity worker under the 2-ring.
        owner = fleet.ring.route(
            OPFRequest(request_id="x", feeder="ieee13").topology_key()
        )
        other = next(w for w in fleet.workers if w != owner)
        bad = OPFRequest(
            request_id="bad", feeder="ieee13", load_multipliers={"no-such-load": 2.0}
        )
        assert fleet.submit(bad) is None
        (resp,) = fleet.run()
        assert resp.status == STATUS_ERROR
        assert fleet.breakers[owner].state == "open"

        good = OPFRequest(request_id="good", feeder="ieee13", load_scale=1.01)
        assert fleet.submit(good) is None
        assert "good" in fleet._outstanding[other]  # affinity skipped
        (resp,) = fleet.run()
        assert resp.status == STATUS_CONVERGED
        assert fleet.snapshot()["fleet.affinity_miss"] == 1

        clock_now[0] = 31.0  # recovery window passed -> half-open probe
        good2 = OPFRequest(request_id="good2", feeder="ieee13", load_scale=1.02)
        assert fleet.submit(good2) is None
        assert "good2" in fleet._outstanding[owner]
        (resp,) = fleet.run()
        assert resp.status == STATUS_CONVERGED
        assert fleet.breakers[owner].state == "closed"


class TestWorkerSpec:
    def test_guards(self):
        with pytest.raises(ValueError):
            WorkerSpec(worker_id="")
        with pytest.raises(ValueError):
            WorkerSpec(worker_id="w0", crash_after_served=-1)
        with pytest.raises(ValueError):
            FaultPlan(faults=(WorkerCrash(worker="w0", after_served=-2),))

    def test_worker_crash_after_lookup(self):
        plan = FaultPlan(
            seed=3,
            faults=(
                WorkerCrash(worker="w0", after_served=8),
                WorkerCrash(worker="w0", after_served=3),
            ),
        )
        assert plan.worker_crash_after("w0") == 3
        assert plan.worker_crash_after("w1") is None

    def test_dead_sim_worker_rejects_submissions(self):
        worker = SimWorker(WorkerSpec(worker_id="w0", queue_size=2))
        worker.alive = False
        with pytest.raises(WorkerQueueFull):
            worker.submit(OPFRequest(request_id="x"))


class TestFleetConfig:
    def test_guards(self):
        with pytest.raises(ValueError):
            FleetConfig(n_workers=0)
        with pytest.raises(ValueError):
            FleetConfig(mode="threads")
        with pytest.raises(ValueError):
            FleetConfig(response_timeout_s=0)

    def test_worker_ids(self):
        assert FleetConfig(n_workers=3).worker_ids() == ["w0", "w1", "w2"]


class TestProcessMode:
    def test_process_fleet_serves_and_survives_a_crash(self):
        """Real multiprocessing workers: serve a mixed stream, then rerun
        with a seeded crash — a genuinely dead process (os._exit) — and
        get the identical result set."""
        reqs = mixed(8)
        config = FleetConfig(
            n_workers=2, mode="process", warm_start=False, max_batch=4,
            response_timeout_s=120.0,
        )
        with FleetFrontend(config) as fleet:
            baseline = fleet.serve(reqs)
        assert {r.status for r in baseline} == {STATUS_CONVERGED}

        plan = FaultPlan(seed=1, faults=(WorkerCrash(worker="w0", after_served=2),))
        with FleetFrontend(config, fault_plan=plan) as faulted_fleet:
            faulted = faulted_fleet.serve(reqs)
            deaths = faulted_fleet.snapshot()["fleet.worker_deaths"]
        assert deaths == 1
        base_by_id = {r.request_id: r.objective for r in baseline}
        fault_by_id = {r.request_id: r.objective for r in faulted}
        assert base_by_id == fault_by_id  # nothing lost, bit-identical
