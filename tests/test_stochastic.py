"""Tests for the two-stage stochastic OPF (repro.stochastic)."""

import numpy as np
import pytest

from repro.core import ADMMConfig
from repro.feeders import ieee13_der
from repro.reference import solve_reference
from repro.utils.exceptions import FormulationError

from repro.stochastic import (
    SAMPLE_DTYPE,
    ScenarioSampler,
    build_stochastic_lp,
    sample_cvar,
    solve_two_stage,
    value_of_stochastic_solution,
)

#: The stochastic instances' penalty — rho = 100 (the paper's single-shot
#: default) stalls on the scenario-expanded LP; see docs/STOCHASTIC.md.
STOCH_CONFIG = ADMMConfig(rho=10.0, eps_rel=1e-3, max_iter=60_000)


@pytest.fixture(scope="module")
def der_net():
    return ieee13_der()


@pytest.fixture(scope="module")
def scenarios(der_net):
    sampler = ScenarioSampler.from_network(der_net, seed=11)
    return sampler.sample(8)


class TestSampler:
    def test_same_seed_bit_identical(self, der_net):
        a = ScenarioSampler.from_network(der_net, seed=3).sample(16)
        b = ScenarioSampler.from_network(der_net, seed=3).sample(16)
        assert np.array_equal(a.load_multipliers, b.load_multipliers)
        assert np.array_equal(a.pv_availability, b.pv_availability)
        assert np.array_equal(a.weights, b.weights)

    def test_different_seed_differs(self, der_net):
        a = ScenarioSampler.from_network(der_net, seed=3).sample(16)
        b = ScenarioSampler.from_network(der_net, seed=4).sample(16)
        assert not np.array_equal(a.load_multipliers, b.load_multipliers)

    def test_dtype_pinned_fp64(self, der_net):
        """Scenario data is problem statement, not compute: it stays fp64
        regardless of which backend precision later solves it."""
        assert SAMPLE_DTYPE == np.dtype("float64")
        scn = ScenarioSampler.from_network(der_net, seed=0).sample(4)
        assert scn.load_multipliers.dtype == np.float64
        assert scn.pv_availability.dtype == np.float64
        assert scn.weights.dtype == np.float64

    def test_dtype_survives_fp32_solve(self, der_net, scenarios):
        """A mixed/fp32 backend solve must not downcast the scenario set."""
        sol = solve_two_stage(
            der_net,
            scenarios,
            config=ADMMConfig(rho=10.0, eps_rel=1e-2, max_iter=2_000),
            backend="numpy32",
        )
        assert sol.problem.scenarios.load_multipliers.dtype == np.float64
        assert scenarios.load_multipliers.dtype == np.float64

    def test_antithetic_pairing(self):
        """Scenario 2j+1 is the mirrored draw of scenario 2j: the load
        multipliers' log-deviations negate pairwise."""
        sampler = ScenarioSampler(["l1", "l2"], seed=5, antithetic=True)
        scn = sampler.sample(8)
        logs = np.log(scn.load_multipliers) + 0.5 * scn.model.load_sigma**2
        assert np.allclose(logs[0::2], -logs[1::2])

    def test_common_random_numbers(self):
        """Per-unit substreams: adding a PV unit leaves every load's draw
        untouched (common-random-number variates across designs)."""
        base = ScenarioSampler(["l1", "l2"], pv_names=[], seed=7).sample(8)
        more = ScenarioSampler(["l1", "l2"], pv_names=["pv1"], seed=7).sample(8)
        assert np.array_equal(base.load_multipliers, more.load_multipliers)

    def test_mean_scenario(self, scenarios):
        mean = scenarios.mean()
        assert mean.n_scenarios == 1
        assert mean.load_multipliers[0] == pytest.approx(
            (scenarios.weights[:, None] * scenarios.load_multipliers).sum(axis=0)
        )

    def test_rejects_bad_count(self, der_net):
        with pytest.raises(ValueError, match="n_scenarios"):
            ScenarioSampler.from_network(der_net).sample(0)


class TestCVaR:
    def test_sample_cvar_tail_mean(self):
        costs = [1.0, 2.0, 3.0, 4.0]
        weights = [0.25] * 4
        assert sample_cvar(costs, weights, 0.75) == pytest.approx(4.0)
        assert sample_cvar(costs, weights, 0.5) == pytest.approx(3.5)

    def test_cvar_at_least_mean(self):
        rng = np.random.default_rng(0)
        costs = rng.random(32)
        weights = np.full(32, 1 / 32)
        assert sample_cvar(costs, weights, 0.9) >= costs.mean() - 1e-12


class TestTwoStage:
    def test_admm_matches_reference_expected(self, der_net, scenarios):
        sol = solve_two_stage(
            der_net, scenarios, objective="expected", config=STOCH_CONFIG
        )
        assert sol.converged
        ref = solve_reference(sol.problem.to_centralized())
        assert sol.objective == pytest.approx(ref.objective, rel=5e-3)

    def test_cvar_objective_at_least_expected(self, der_net, scenarios):
        """CVaR is the acceptance-criterion risk premium: the CVaR-optimal
        objective value can never undercut the expected-value optimum."""
        exp = solve_two_stage(
            der_net, scenarios, objective="expected", config=STOCH_CONFIG
        )
        cvar = solve_two_stage(
            der_net, scenarios, objective="cvar", config=STOCH_CONFIG
        )
        assert exp.converged and cvar.converged
        assert cvar.objective >= exp.objective - 1e-6
        # And on any single solution, CVaR of the cost distribution
        # dominates its mean.
        assert cvar.cvar_cost >= cvar.expected_cost - 1e-9

    def test_first_stage_shared_across_scenarios(self, der_net, scenarios):
        """Non-anticipativity: the first-stage variables appear once,
        unsuffixed, and land in every scenario's components."""
        prob = build_stochastic_lp(der_net, scenarios)
        vi = prob.var_index
        for name in prob.first_stage:
            phases = der_net.generators[name].phases
            for phi in phases:
                vi.index(("pg", name, phi))  # unsuffixed key exists
                with pytest.raises(KeyError):
                    vi.index(("pg", f"{name}@s0", phi))

    def test_fixed_first_stage_is_respected(self, der_net, scenarios):
        fix = {
            "der671": np.full(3, 0.05),
            "der675": np.full(3, 0.02),
        }
        prob = build_stochastic_lp(
            der_net, scenarios, objective="expected", fix_first_stage=fix
        )
        ref = solve_reference(prob.to_centralized())
        got = prob.first_stage_setpoints(ref.x)
        for name, want in fix.items():
            assert got[name] == pytest.approx(want, abs=1e-8)

    def test_vss_nonnegative_and_positive_here(self, der_net, scenarios):
        """The DER feeder is built as a newsvendor instance, so hedging
        over scenarios must strictly beat planning on the mean scenario."""
        report = value_of_stochastic_solution(der_net, scenarios)
        assert report.vss >= -1e-9
        assert report.vss > 1e-6

    def test_invalid_objective_rejected(self, der_net, scenarios):
        with pytest.raises(FormulationError, match="objective"):
            build_stochastic_lp(der_net, scenarios, objective="variance")

    def test_invalid_alpha_rejected(self, der_net, scenarios):
        with pytest.raises(FormulationError, match="alpha"):
            build_stochastic_lp(der_net, scenarios, alpha=1.0)
