"""Tests for the discrete kernel scheduler and its agreement with the
closed-form occupancy model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import A100, DeviceSpec, local_update_time_threads
from repro.gpu.kernel_sim import (
    KernelSpec,
    concurrent_block_slots,
    local_update_kernel,
    simulate_kernel,
    simulate_local_update,
)

TINY = DeviceSpec(
    name="tiny",
    flops_per_s=1e9,
    mem_bandwidth_bytes_s=1e9,
    kernel_launch_s=0.0,
    sm_count=2,
    max_threads_per_sm=64,
    max_blocks_per_sm=2,
    clock_hz=1e6,
)


class TestSpecValidation:
    def test_rejects_bad_threads(self):
        with pytest.raises(ValueError):
            KernelSpec("k", 0, np.ones(3))

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            KernelSpec("k", 1, np.zeros(0))

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            KernelSpec("k", 1, np.array([1.0, -2.0]))


class TestSlots:
    def test_block_cap(self):
        # 64 threads/SM budget, cap 2 blocks/SM, 2 SMs.
        assert concurrent_block_slots(TINY, 1) == 4
        assert concurrent_block_slots(TINY, 32) == 4
        assert concurrent_block_slots(TINY, 64) == 2

    def test_at_least_one_block(self):
        assert concurrent_block_slots(TINY, 10_000) == TINY.sm_count


class TestScheduler:
    def test_single_wave(self):
        spec = KernelSpec("k", 1, np.array([10.0, 20.0, 5.0]))
        ex = simulate_kernel(TINY, spec)
        assert ex.makespan_cycles == 20.0

    def test_two_waves_uniform(self):
        spec = KernelSpec("k", 1, np.full(8, 10.0))  # 4 slots -> 2 waves
        ex = simulate_kernel(TINY, spec)
        assert ex.makespan_cycles == 20.0

    def test_skewed_blocks_dominate(self):
        cycles = np.array([100.0] + [1.0] * 7)
        ex = simulate_kernel(TINY, KernelSpec("k", 1, cycles))
        assert ex.makespan_cycles == pytest.approx(100.0)

    def test_time_includes_launch(self):
        dev = DeviceSpec(
            name="l", flops_per_s=1e9, mem_bandwidth_bytes_s=1e9,
            kernel_launch_s=1e-5, sm_count=1, clock_hz=1e6,
        )
        ex = simulate_kernel(dev, KernelSpec("k", 1, np.array([100.0])))
        assert ex.time_s == pytest.approx(1e-5 + 100.0 / 1e6)

    def test_utilization_bounds(self):
        ex = simulate_kernel(TINY, KernelSpec("k", 1, np.arange(1.0, 30.0)))
        assert 0.0 < ex.utilization <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(1.0, 100.0), min_size=1, max_size=60),
        st.sampled_from([1, 2, 8, 64]),
    )
    def test_makespan_bounds(self, cycles, threads):
        """List scheduling: max(mean load, max block) <= makespan <= sum."""
        spec = KernelSpec("k", threads, np.array(cycles))
        ex = simulate_kernel(TINY, spec)
        lower = max(float(np.max(cycles)), float(np.sum(cycles)) / ex.concurrent_blocks)
        assert ex.makespan_cycles >= lower - 1e-9
        assert ex.makespan_cycles <= float(np.sum(cycles)) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(1.0, 50.0), min_size=4, max_size=40))
    def test_more_threads_never_slower(self, sizes):
        t1 = simulate_local_update(TINY, np.array(sizes), 1).time_s
        t8 = simulate_local_update(TINY, np.array(sizes), 8).time_s
        assert t8 <= t1 + 1e-12


class TestAgainstAnalyticModel:
    def test_local_update_agreement(self, ieee13_dec):
        """Discrete schedule and closed-form wave model agree within the
        wave-quantization error (factor ~2)."""
        sizes = np.array([c.n_vars for c in ieee13_dec.components], dtype=float)
        for threads in (1, 8, 64):
            analytic = local_update_time_threads(A100, sizes, threads)
            discrete = simulate_local_update(A100, sizes, threads).time_s
            assert discrete <= 2.5 * analytic
            assert analytic <= 2.5 * discrete

    def test_kernel_from_decomposition(self, ieee13_dec):
        spec = local_update_kernel(ieee13_dec, 16)
        assert spec.n_blocks == ieee13_dec.n_components
