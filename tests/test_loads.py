"""Tests for the load model rows (4a)-(4j), including the consistency of the
nominal-phasor delta map with the paper's literal equations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formulation.loads import (
    C_FROM,
    C_TO,
    consumption_rows,
    delta_link_rows,
    delta_link_rows_paper,
    delta_withdrawal_map,
    load_rows,
    nominal_phasor,
    wye_link_rows,
)
from repro.formulation.rows import rows_to_dense_local
from repro.network.components import Connection, Load


def _solve_pb_from_rows(rows, load, pd, qd):
    """Solve the link rows for (pb, qb) given consumption values."""
    pb_keys = [("pb", load.name, p) for p in load.bus_phases]
    qb_keys = [("qb", load.name, p) for p in load.bus_phases]
    pd_keys = [("pd", load.name, p) for p in load.phases]
    qd_keys = [("qd", load.name, p) for p in load.phases]
    keys = pb_keys + qb_keys + pd_keys + qd_keys
    a, b = rows_to_dense_local(rows, keys)
    nb = len(pb_keys) + len(qb_keys)
    a_b, a_d = a[:, :nb], a[:, nb:]
    rhs = b - a_d @ np.concatenate([pd, qd])
    sol, *_ = np.linalg.lstsq(a_b, rhs, rcond=None)
    return sol[: len(pb_keys)], sol[len(pb_keys) :]


class TestConsumptionRows:
    def test_constant_power_independent_of_voltage(self):
        load = Load("l", "b", (1,), p_ref=0.5, q_ref=0.2, alpha=0.0, beta=0.0)
        rows = consumption_rows(load)
        assert len(rows) == 2
        # alpha = 0 removes the w coupling entirely.
        assert ("w", "b", 1) not in rows[0].coeffs
        assert rows[0].rhs == pytest.approx(0.5)

    def test_constant_impedance_linearization(self):
        """alpha=2: p^d = a*w, i.e. p^d - a*w = 0."""
        load = Load("l", "b", (2,), p_ref=0.4, alpha=2.0)
        row = consumption_rows(load)[0]
        assert row.coeffs[("pd", "l", 2)] == pytest.approx(1.0)
        assert row.coeffs[("w", "b", 2)] == pytest.approx(-0.4)
        assert row.rhs == pytest.approx(0.0)

    def test_constant_current_at_nominal_voltage(self):
        """At w = 1 every ZIP type must consume exactly the reference."""
        for alpha in (0.0, 1.0, 2.0):
            load = Load("l", "b", (1,), p_ref=0.3, alpha=alpha)
            row = consumption_rows(load)[0]
            w_coef = row.coeffs.get(("w", "b", 1), 0.0)
            pd_at_w1 = row.rhs - w_coef * 1.0
            assert pd_at_w1 == pytest.approx(0.3), f"alpha={alpha}"

    def test_delta_normalizes_tripled_voltage(self):
        """(4d): w_hat = 3w for delta branches, linearized around its nominal
        value 3 — the tripling cancels, so the row matches the wye slope and
        a delta branch consumes exactly its reference at nominal voltage."""
        wye = Load("l1", "b", (1,), p_ref=0.3, alpha=1.0)
        delta = Load("l2", "b", (1,), connection=Connection.DELTA, p_ref=0.3, alpha=1.0)
        wc = consumption_rows(wye)[0].coeffs[("w", "b", 1)]
        drow = consumption_rows(delta)[0]
        assert drow.coeffs[("w", "b", 1)] == pytest.approx(wc)
        pd_at_w1 = drow.rhs - drow.coeffs[("w", "b", 1)] * 1.0
        assert pd_at_w1 == pytest.approx(0.3)


class TestWyeLink:
    def test_identity_rows(self):
        load = Load("l", "b", (1, 3))
        rows = wye_link_rows(load)
        assert len(rows) == 4
        row = rows[0]
        assert row.coeffs[("pb", "l", 1)] == 1.0
        assert row.coeffs[("pd", "l", 1)] == -1.0

    def test_rejects_delta(self):
        with pytest.raises(ValueError, match="not wye"):
            wye_link_rows(Load("l", "b", (1,), connection=Connection.DELTA))


class TestDeltaMap:
    def test_ratio_constants(self):
        """c_from + c_to = 1 guarantees power conservation (4f)."""
        assert C_FROM + C_TO == pytest.approx(1.0)
        assert abs(C_FROM) == pytest.approx(1 / np.sqrt(3))

    def test_phasor_definition(self):
        va, vb = nominal_phasor(1), nominal_phasor(2)
        assert va / (va - vb) == pytest.approx(C_FROM)
        assert -vb / (va - vb) == pytest.approx(C_TO)

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            nominal_phasor(4)

    def test_map_requires_delta(self):
        with pytest.raises(ValueError, match="not delta"):
            delta_withdrawal_map(Load("l", "b", (1,)))

    @settings(max_examples=30, deadline=None)
    @given(
        pd=st.lists(st.floats(-1, 1), min_size=3, max_size=3),
        qd=st.lists(st.floats(-1, 1), min_size=3, max_size=3),
    )
    def test_full_delta_matches_paper_equations(self, pd, qd):
        """Property: the phasor-map solution satisfies the paper's implicit
        system (4f)-(4j) for any branch consumptions."""
        load = Load("l", "b", (1, 2, 3), connection=Connection.DELTA)
        pd = np.array(pd)
        qd = np.array(qd)
        pb, qb = _solve_pb_from_rows(delta_link_rows(load), load, pd, qd)
        paper = delta_link_rows_paper(load)
        keys = (
            [("pb", "l", p) for p in (1, 2, 3)]
            + [("qb", "l", p) for p in (1, 2, 3)]
            + [("pd", "l", p) for p in (1, 2, 3)]
            + [("qd", "l", p) for p in (1, 2, 3)]
        )
        a, b = rows_to_dense_local(paper, keys)
        xfull = np.concatenate([pb, qb, pd, qd])
        np.testing.assert_allclose(a @ xfull, b, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        branch=st.sampled_from([1, 2, 3]),
        pd=st.floats(-1, 1),
        qd=st.floats(-1, 1),
    )
    def test_partial_delta_conserves_power(self, branch, pd, qd):
        """(4f) holds for single-branch deltas too."""
        load = Load("l", "b", (branch,), connection=Connection.DELTA)
        pb, qb = _solve_pb_from_rows(
            delta_link_rows(load), load, np.array([pd]), np.array([qd])
        )
        assert np.sum(pb) == pytest.approx(pd, abs=1e-9)
        assert np.sum(qb) == pytest.approx(qd, abs=1e-9)

    def test_paper_rows_require_full_delta(self):
        with pytest.raises(ValueError, match="full 3-branch"):
            delta_link_rows_paper(Load("l", "b", (1,), connection=Connection.DELTA))

    def test_row_counts_match_paper(self):
        """Full delta: 6 link rows in both formulations (Table IV parity)."""
        load = Load("l", "b", (1, 2, 3), connection=Connection.DELTA)
        assert len(delta_link_rows(load)) == len(delta_link_rows_paper(load)) == 6


class TestLoadRows:
    def test_wye_total_row_count(self):
        load = Load("l", "b", (1, 2), p_ref=0.1)
        # 2 consumption + 2 link per phase.
        assert len(load_rows(load)) == 8

    def test_single_branch_delta_row_count(self):
        load = Load("l", "b", (2,), connection=Connection.DELTA, p_ref=0.1)
        # 2 consumption (one branch) + 2 link rows per touched phase (2).
        assert len(load_rows(load)) == 6

    def test_all_rows_owned_by_bus(self):
        load = Load("l", "busX", (1, 2, 3), connection=Connection.DELTA)
        assert all(r.owner == ("bus", "busX") for r in load_rows(load))
