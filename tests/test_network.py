"""Unit tests for the DistributionNetwork container."""

import numpy as np
import pytest

from repro.network import Bus, DistributionNetwork, Generator, Line, Load
from repro.utils.exceptions import NetworkValidationError


def three_bus() -> DistributionNetwork:
    net = DistributionNetwork(name="tiny")
    net.add_bus(Bus("a", (1, 2, 3), w_min=1.0, w_max=1.0))
    net.add_bus(Bus("b", (1, 2, 3)))
    net.add_bus(Bus("c", (1,)))
    net.add_line(Line("ab", "a", "b", (1, 2, 3), r=np.eye(3) * 0.01, x=np.eye(3) * 0.02))
    net.add_line(Line("bc", "b", "c", (1,), r=[[0.01]], x=[[0.02]]))
    net.add_generator(Generator("src", "a", (1, 2, 3)))
    net.add_load(Load("ld", "c", (1,), p_ref=0.1, q_ref=0.05))
    net.substation = "a"
    return net


class TestMutation:
    def test_duplicate_bus_rejected(self):
        net = three_bus()
        with pytest.raises(NetworkValidationError, match="duplicate bus"):
            net.add_bus(Bus("a", (1,)))

    def test_duplicate_line_rejected(self):
        net = three_bus()
        with pytest.raises(NetworkValidationError, match="duplicate line"):
            net.add_line(Line("ab", "a", "b", (1,)))

    def test_line_unknown_bus_rejected(self):
        net = three_bus()
        with pytest.raises(NetworkValidationError, match="unknown bus"):
            net.add_line(Line("xz", "x", "z", (1,)))

    def test_line_phase_mismatch_rejected(self):
        net = three_bus()
        with pytest.raises(NetworkValidationError, match="absent at bus"):
            net.add_line(Line("ac", "a", "c", (1, 2)))

    def test_load_phase_mismatch_rejected(self):
        net = three_bus()
        with pytest.raises(NetworkValidationError, match="absent at bus"):
            net.add_load(Load("bad", "c", (2,)))

    def test_remove_line_returns_it(self):
        net = three_bus()
        line = net.remove_line("bc")
        assert line.name == "bc"
        assert "bc" not in net.lines

    def test_remove_missing_raises(self):
        net = three_bus()
        with pytest.raises(NetworkValidationError, match="no line"):
            net.remove_line("zz")
        with pytest.raises(NetworkValidationError, match="no load"):
            net.remove_load("zz")
        with pytest.raises(NetworkValidationError, match="no generator"):
            net.remove_generator("zz")


class TestTopology:
    def test_is_radial(self):
        net = three_bus()
        assert net.is_radial()
        net.add_line(Line("ab2", "a", "b", (1,)))
        assert not net.is_radial()

    def test_validate_disconnected(self):
        net = three_bus()
        net.remove_line("bc")
        with pytest.raises(NetworkValidationError, match="disconnected"):
            net.validate()

    def test_validate_radial_flag(self):
        net = three_bus()
        net.add_line(Line("ab2", "a", "b", (1,)))
        net.validate()  # connected, fine
        with pytest.raises(NetworkValidationError, match="not radial"):
            net.validate(require_radial=True)

    def test_leaf_buses_exclude_substation(self):
        net = three_bus()
        assert net.leaf_buses() == ["c"]

    def test_incidence_queries(self):
        net = three_bus()
        assert {l.name for l in net.lines_at("b")} == {"ab", "bc"}
        assert [g.name for g in net.generators_at("a")] == ["src"]
        assert [l.name for l in net.loads_at("c")] == ["ld"]

    def test_adjacency_cache_invalidation(self):
        net = three_bus()
        assert len(net.lines_at("b")) == 2
        net.remove_line("bc")
        assert len(net.lines_at("b")) == 1
        net.add_line(Line("bc2", "b", "c", (1,)))
        assert len(net.lines_at("b")) == 2

    def test_parallel_lines_not_leaves(self):
        net = three_bus()
        net.add_line(Line("bc2", "b", "c", (1,)))
        assert "c" not in net.leaf_buses()


class TestStats:
    def test_counts(self):
        net = three_bus()
        assert net.n_buses == 3
        assert net.n_lines == 2
        assert net.total_load_p == pytest.approx(0.1)

    def test_phase_counts(self):
        hist = three_bus().phase_counts()
        assert hist == {1: 1, 2: 0, 3: 2}

    def test_copy_is_deep(self):
        net = three_bus()
        clone = net.copy()
        clone.remove_line("bc")
        assert "bc" in net.lines
        clone.buses["b"].w_max[0] = 2.0
        assert net.buses["b"].w_max[0] == pytest.approx(1.21)

    def test_summary_mentions_counts(self):
        assert "3 buses" in three_bus().summary()
