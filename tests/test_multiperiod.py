"""Tests for the multi-period storage extension."""

import numpy as np
import pytest

from repro.core import ADMMConfig
from repro.feeders import SyntheticFeederSpec, build_synthetic_feeder
from repro.multiperiod import (
    MultiPeriodSolverFreeADMM,
    Storage,
    build_multiperiod_lp,
    decompose_multiperiod,
)
from repro.reference import solve_reference
from repro.utils.exceptions import FormulationError


@pytest.fixture(scope="module")
def mp_net():
    return build_synthetic_feeder(
        SyntheticFeederSpec(name="mp", n_buses=15, seed=5, load_density=0.8)
    )


@pytest.fixture(scope="module")
def mp_setup(mp_net):
    load = np.array([0.6, 0.7, 1.0, 1.3, 1.1, 0.8])
    price = np.array([0.5, 0.6, 1.0, 2.0, 1.5, 0.8])
    host = [b for b in mp_net.buses.values() if b.n_phases == 3][1]
    st = Storage("ess1", host.name, p_ch_max=0.1, p_dis_max=0.1, energy_max=0.3, soc0=0.15)
    prob = build_multiperiod_lp(mp_net, load, price, [st])
    ref = solve_reference(prob.to_centralized())
    return prob, ref, st


class TestStorageValidation:
    def test_bad_ratings(self):
        with pytest.raises(ValueError, match="nonpositive"):
            Storage("s", "b", energy_max=0.0)

    def test_bad_efficiency(self):
        with pytest.raises(ValueError, match="efficiencies"):
            Storage("s", "b", eta_ch=1.5)

    def test_soc0_outside_capacity(self):
        with pytest.raises(ValueError, match="soc0"):
            Storage("s", "b", energy_max=0.1, soc0=0.5)


class TestBuild:
    def test_variable_count_scales_with_periods(self, mp_net):
        p2 = build_multiperiod_lp(mp_net, np.ones(2))
        p4 = build_multiperiod_lp(mp_net, np.ones(4))
        assert p4.n_vars == 2 * p2.n_vars
        assert len(p4.rows) == 2 * len(p2.rows)

    def test_empty_profile_rejected(self, mp_net):
        with pytest.raises(FormulationError, match="non-empty"):
            build_multiperiod_lp(mp_net, [])

    def test_price_length_checked(self, mp_net):
        with pytest.raises(FormulationError, match="match"):
            build_multiperiod_lp(mp_net, np.ones(3), price_profile=np.ones(2))

    def test_unknown_storage_bus(self, mp_net):
        with pytest.raises(FormulationError, match="unknown bus"):
            build_multiperiod_lp(mp_net, np.ones(2), storages=[Storage("s", "zz")])

    def test_storage_owns_its_chain(self, mp_setup):
        prob, _, st = mp_setup
        soc_rows = [r for r in prob.rows if r.owner == ("storage", st.name)]
        # One SOC row per period + the cyclic closure.
        assert len(soc_rows) == prob.n_periods + 1

    def test_original_network_not_mutated(self, mp_net):
        before = mp_net.total_load_p
        build_multiperiod_lp(mp_net, np.array([2.0, 3.0]))
        assert mp_net.total_load_p == pytest.approx(before)


class TestReferenceSolution:
    def test_soc_dynamics_hold(self, mp_setup):
        prob, ref, st = mp_setup
        soc = prob.soc_trajectory(ref.x, st.name)
        power = prob.storage_power(ref.x, st.name)
        vi = prob.var_index
        for t in range(prob.n_periods):
            nm = f"{st.name}@t{t}"
            charge = sum(
                ref.x[vi.index(("sc", nm, phi))]
                for phi in prob.network.buses[st.bus].phases
            )
            discharge = sum(
                ref.x[vi.index(("sd", nm, phi))]
                for phi in prob.network.buses[st.bus].phases
            )
            expected = soc[t] + st.eta_ch * charge - discharge / st.eta_dis
            assert soc[t + 1] == pytest.approx(expected, abs=1e-7)
        assert power.shape == (prob.n_periods,)

    def test_cyclic_constraint(self, mp_setup):
        prob, ref, st = mp_setup
        soc = prob.soc_trajectory(ref.x, st.name)
        assert soc[-1] == pytest.approx(st.soc0, abs=1e-7)

    def test_arbitrage_direction(self, mp_setup):
        """Storage charges in the cheapest period and discharges in the most
        expensive one — the economics must point the right way."""
        prob, ref, st = mp_setup
        power = prob.storage_power(ref.x, st.name)
        assert power[0] < -1e-4  # price 0.5: charging (net draw)
        assert power[3] > 1e-4  # price 2.0: discharging

    def test_storage_lowers_cost(self, mp_net, mp_setup):
        prob, ref, st = mp_setup
        load = np.array([0.6, 0.7, 1.0, 1.3, 1.1, 0.8])
        price = np.array([0.5, 0.6, 1.0, 2.0, 1.5, 0.8])
        no_storage = build_multiperiod_lp(mp_net, load, price)
        ref0 = solve_reference(no_storage.to_centralized())
        assert ref.objective < ref0.objective

    def test_soc_within_capacity(self, mp_setup):
        prob, ref, st = mp_setup
        soc = prob.soc_trajectory(ref.x, st.name)
        assert np.all(soc >= -1e-9)
        assert np.all(soc <= st.energy_max + 1e-9)


class TestDistributedSolve:
    def test_admm_matches_reference(self, mp_setup):
        prob, ref, _ = mp_setup
        dec = decompose_multiperiod(prob)
        res = MultiPeriodSolverFreeADMM(
            dec, ADMMConfig(max_iter=200_000, record_history=False)
        ).solve()
        assert res.converged
        assert ref.compare_objective(res.objective) < 2e-2

    def test_components_span_periods_only_for_storage(self, mp_setup):
        prob, _, st = mp_setup
        dec = decompose_multiperiod(prob)
        storage_comps = [c for c in dec.linear if c.name == f"storage:{st.name}"]
        assert len(storage_comps) == 1
        # The storage component touches variables from every period.
        periods = {key[1].split("@t")[1] for key in storage_comps[0].local_keys}
        assert len(periods) == prob.n_periods

    def test_every_variable_covered(self, mp_setup):
        prob, _, _ = mp_setup
        dec = decompose_multiperiod(prob)
        assert np.all(dec.counts >= 1)


class TestRollingHorizon:
    @pytest.fixture(scope="class")
    def schedule(self, mp_net):
        from repro.multiperiod import rolling_horizon

        load = [0.6, 0.8, 1.1, 1.3, 1.0, 0.7]
        price = [0.5, 0.7, 1.1, 1.8, 1.2, 0.6]
        host = [b for b in mp_net.buses.values() if b.n_phases == 3][1]
        st = Storage(
            "ess1", host.name, p_ch_max=0.08, p_dis_max=0.08,
            energy_max=0.25, soc0=0.1,
        )
        result = rolling_horizon(
            mp_net, load, price, [st], window=3, solver="reference"
        )
        return result, st

    def test_soc_dynamics_within_1e8(self, schedule):
        """Acceptance criterion: the committed trajectory satisfies the SoC
        dynamics and limits to 1e-8."""
        result, st = schedule
        soc = result.soc_trajectory(st.name)
        assert soc[0] == pytest.approx(st.soc0, abs=1e-12)
        for t, step in enumerate(result.steps):
            ch = step.storage_charge[st.name]
            dis = step.storage_discharge[st.name]
            expected = soc[t] + st.eta_ch * ch - dis / st.eta_dis
            assert abs(soc[t + 1] - expected) <= 1e-8
            assert -1e-8 <= ch <= st.p_ch_max + 1e-8
            assert -1e-8 <= dis <= st.p_dis_max + 1e-8
        assert np.all(soc >= -1e-8)
        assert np.all(soc <= st.energy_max + 1e-8)

    def test_one_step_per_period(self, schedule):
        result, _ = schedule
        assert [s.period for s in result.steps] == list(range(6))
        assert all(s.converged for s in result.steps)
        assert result.committed_cost > 0

    def test_admm_close_to_reference(self, mp_net, schedule):
        from repro.multiperiod import rolling_horizon

        ref_result, st = schedule
        load = [0.6, 0.8, 1.1, 1.3, 1.0, 0.7]
        price = [0.5, 0.7, 1.1, 1.8, 1.2, 0.6]
        admm = rolling_horizon(
            mp_net, load, price,
            [Storage("ess1", st.bus, p_ch_max=0.08, p_dis_max=0.08,
                     energy_max=0.25, soc0=0.1)],
            window=3, solver="admm",
            config=ADMMConfig(rho=10.0, eps_rel=1e-3, max_iter=40_000),
        )
        assert all(s.converged for s in admm.steps)
        rel = abs(admm.committed_cost - ref_result.committed_cost) / abs(
            ref_result.committed_cost
        )
        assert rel < 5e-2

    def test_empty_profile_rejected(self, mp_net):
        from repro.multiperiod import rolling_horizon

        with pytest.raises(FormulationError, match="non-empty"):
            rolling_horizon(mp_net, [])

    def test_bad_window_rejected(self, mp_net):
        from repro.multiperiod import rolling_horizon

        with pytest.raises(FormulationError, match="window"):
            rolling_horizon(mp_net, [1.0], window=0)

    def test_bad_solver_rejected(self, mp_net):
        from repro.multiperiod import rolling_horizon

        with pytest.raises(FormulationError, match="solver"):
            rolling_horizon(mp_net, [1.0], solver="magic")
