"""Tests for the nodal power balance rows (3a)-(3b)."""

import numpy as np
import pytest

from repro.formulation.balance import balance_rows
from repro.network import Bus, DistributionNetwork, Generator, Line, Load


def star_net() -> DistributionNetwork:
    """Center bus with two lines, one generator, one load, and a shunt."""
    net = DistributionNetwork()
    net.add_bus(Bus("mid", (1, 2), g_sh=np.array([0.01, 0.0]), b_sh=np.array([0.0, 0.02])))
    net.add_bus(Bus("up", (1, 2)))
    net.add_bus(Bus("down", (1,)))
    net.add_line(Line("up_mid", "up", "mid", (1, 2), r=np.eye(2) * 0.1, x=np.eye(2) * 0.1))
    net.add_line(Line("mid_down", "mid", "down", (1,), r=[[0.1]], x=[[0.1]]))
    net.add_generator(Generator("gen", "mid", (1,)))
    net.add_load(Load("ld", "mid", (1, 2), p_ref=0.1))
    return net


class TestBalanceRows:
    def test_two_rows_per_phase(self):
        rows = balance_rows(star_net(), "mid")
        assert len(rows) == 4  # phases {1,2} x {p,q}

    def test_phase1_real_row_contents(self):
        net = star_net()
        row = next(r for r in balance_rows(net, "mid") if r.tag == "balance-p:mid:1")
        # to-side of up_mid, from-side of mid_down.
        assert row.coeffs[("pt", "up_mid", 1)] == 1.0
        assert row.coeffs[("pf", "mid_down", 1)] == 1.0
        assert row.coeffs[("pb", "ld", 1)] == 1.0
        assert row.coeffs[("w", "mid", 1)] == pytest.approx(0.01)
        assert row.coeffs[("pg", "gen", 1)] == -1.0
        assert row.rhs == 0.0

    def test_phase2_has_no_generator_or_downstream_line(self):
        net = star_net()
        row = next(r for r in balance_rows(net, "mid") if r.tag == "balance-p:mid:2")
        assert ("pg", "gen", 2) not in row.coeffs
        assert ("pf", "mid_down", 2) not in row.coeffs
        assert row.coeffs[("pb", "ld", 2)] == 1.0

    def test_reactive_shunt_sign(self):
        """(3b): the shunt susceptance enters with -b^sh * w."""
        net = star_net()
        row = next(r for r in balance_rows(net, "mid") if r.tag == "balance-q:mid:2")
        assert row.coeffs[("w", "mid", 2)] == pytest.approx(-0.02)

    def test_leaf_bus_row_only_line_side(self):
        net = star_net()
        row = next(r for r in balance_rows(net, "down") if r.tag == "balance-p:down:1")
        assert set(row.coeffs) == {("pt", "mid_down", 1)}

    def test_delta_load_withdrawal_phases(self):
        """A delta load on branch 1 (a-b) withdraws on phases 1 and 2."""
        net = star_net()
        from repro.network.components import Connection

        net.add_load(Load("d", "mid", (1,), connection=Connection.DELTA, p_ref=0.1))
        rows = balance_rows(net, "mid")
        p1 = next(r for r in rows if r.tag == "balance-p:mid:1")
        p2 = next(r for r in rows if r.tag == "balance-p:mid:2")
        assert ("pb", "d", 1) in p1.coeffs
        assert ("pb", "d", 2) in p2.coeffs
