"""Unit tests for constraint rows and assembly."""

import numpy as np
import pytest

from repro.formulation.rows import Row, rows_to_dense_local, rows_to_matrix
from repro.formulation.variables import VariableIndex


def vi3():
    vi = VariableIndex()
    vi.add(("w", "a", 1))
    vi.add(("w", "b", 1))
    vi.add(("pf", "e", 1))
    return vi


class TestRow:
    def test_zero_coefficients_dropped(self):
        row = Row({("w", "a", 1): 0.0, ("w", "b", 1): 2.0}, 1.0, ("bus", "a"))
        assert row.support() == {("w", "b", 1)}

    def test_rhs_coerced_to_float(self):
        row = Row({("w", "a", 1): 1}, 2, ("bus", "a"))
        assert isinstance(row.rhs, float)
        assert isinstance(row.coeffs[("w", "a", 1)], float)


class TestMatrixAssembly:
    def test_sparse_assembly(self):
        vi = vi3()
        rows = [
            Row({("w", "a", 1): 1.0, ("pf", "e", 1): -2.0}, 3.0, ("bus", "a")),
            Row({("w", "b", 1): 4.0}, 5.0, ("bus", "b")),
        ]
        a, b = rows_to_matrix(rows, vi)
        assert a.shape == (2, 3)
        np.testing.assert_allclose(a.toarray(), [[1, 0, -2], [0, 4, 0]])
        np.testing.assert_allclose(b, [3, 5])

    def test_empty_rows(self):
        a, b = rows_to_matrix([], vi3())
        assert a.shape == (0, 3)
        assert b.shape == (0,)

    def test_dense_local_assembly(self):
        keys = [("w", "a", 1), ("pf", "e", 1)]
        rows = [Row({("pf", "e", 1): 2.0}, 1.0, ("line", "e"))]
        a, b = rows_to_dense_local(rows, keys)
        np.testing.assert_allclose(a, [[0.0, 2.0]])
        np.testing.assert_allclose(b, [1.0])

    def test_dense_local_foreign_key_raises(self):
        rows = [Row({("w", "zz", 1): 1.0}, 0.0, ("bus", "zz"))]
        with pytest.raises(KeyError):
            rows_to_dense_local(rows, [("w", "a", 1)])
