"""Tests for the exact box-affine projection (semismooth Newton + fallback)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.decomposition.rowreduce import reduced_row_echelon
from repro.qp import project_box_affine, solve_qp_box_eq


class TestBasics:
    def test_no_equalities_is_clip(self):
        v = np.array([-2.0, 0.5, 3.0])
        lb = np.array([-1.0, -1.0, -1.0])
        ub = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(
            project_box_affine(v, np.zeros((0, 3)), np.zeros(0), lb, ub),
            [-1.0, 0.5, 1.0],
        )

    def test_interior_affine_projection(self):
        """When the box is inactive the result is the plain affine projection."""
        a = np.array([[1.0, 1.0]])
        b = np.array([1.0])
        v = np.array([0.8, 0.8])
        lb = np.full(2, -10.0)
        ub = np.full(2, 10.0)
        x = project_box_affine(v, a, b, lb, ub)
        p_affine = v - a.T @ np.linalg.solve(a @ a.T, a @ v - b)
        np.testing.assert_allclose(x, p_affine, atol=1e-8)

    def test_known_corner_solution(self):
        """Projection forced onto a box face."""
        a = np.array([[1.0, 1.0]])
        b = np.array([2.0])
        v = np.array([5.0, -5.0])
        lb = np.array([0.0, 0.0])
        ub = np.array([1.5, 1.5])
        x = project_box_affine(v, a, b, lb, ub)
        np.testing.assert_allclose(x, [1.5, 0.5], atol=1e-7)


@st.composite
def feasible_projection(draw):
    n = draw(st.integers(2, 8))
    m = draw(st.integers(1, 4))
    a = draw(arrays(np.float64, (m, n), elements=st.floats(-2, 2, allow_nan=False)))
    x_feas = draw(arrays(np.float64, (n,), elements=st.floats(-1, 1, allow_nan=False)))
    lb = x_feas - draw(arrays(np.float64, (n,), elements=st.floats(0.05, 2, allow_nan=False)))
    ub = x_feas + draw(arrays(np.float64, (n,), elements=st.floats(0.05, 2, allow_nan=False)))
    v = draw(arrays(np.float64, (n,), elements=st.floats(-4, 4, allow_nan=False)))
    ar, br, _ = reduced_row_echelon(a, a @ x_feas)
    return v, ar, br, lb, ub


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(feasible_projection())
    def test_feasibility(self, prob):
        v, a, b, lb, ub = prob
        x = project_box_affine(v, a, b, lb, ub)
        if a.shape[0]:
            # Row reduction can divide by near-zero pivots and inflate the
            # system by orders of magnitude; the solver's termination is
            # relative to that scale, so the feasibility check must be too.
            scale = max(1.0, float(np.abs(a).max()), float(np.linalg.norm(b)))
            assert np.abs(a @ x - b).max() < 1e-6 * scale
        assert np.all(x >= lb - 1e-8) and np.all(x <= ub + 1e-8)

    @settings(max_examples=30, deadline=None)
    @given(feasible_projection())
    def test_idempotency(self, prob):
        """Projecting a projected point is a no-op."""
        v, a, b, lb, ub = prob
        # Same conditioning caveat as test_matches_interior_point: row
        # reduction can inflate the system by ~1e7 on nearly singular
        # draws, where a fixed re-projection tolerance is meaningless.
        assume(a.size == 0 or np.abs(a).max() < 1e4)
        x = project_box_affine(v, a, b, lb, ub)
        x2 = project_box_affine(x, a, b, lb, ub)
        np.testing.assert_allclose(x2, x, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(feasible_projection())
    def test_matches_interior_point(self, prob):
        """Both exact methods agree (they solve the same strictly convex QP)."""
        v, a, b, lb, ub = prob
        # Row reduction divides by near-zero pivots on nearly singular
        # draws, inflating entries by ~1e7; at that conditioning neither
        # method is accurate to the fixed tolerance, so the comparison
        # says nothing — restrict to sanely scaled reduced systems.
        assume(a.size == 0 or np.abs(a).max() < 1e4)
        x_newton = project_box_affine(v, a, b, lb, ub)
        r = solve_qp_box_eq(np.eye(len(v)), -v, a, b, lb, ub)
        assert r.converged
        # Interior-point accuracy degrades to O(sqrt(tol)) on degenerate
        # active sets, hence the loose comparison.
        np.testing.assert_allclose(x_newton, r.x, atol=2e-4)

    @settings(max_examples=30, deadline=None)
    @given(feasible_projection())
    def test_firm_nonexpansiveness(self, prob):
        """Projections onto convex sets are nonexpansive."""
        v, a, b, lb, ub = prob
        rng = np.random.default_rng(1)
        u = v + rng.standard_normal(len(v))
        xu = project_box_affine(u, a, b, lb, ub)
        xv = project_box_affine(v, a, b, lb, ub)
        assert np.linalg.norm(xu - xv) <= np.linalg.norm(u - v) + 1e-8
