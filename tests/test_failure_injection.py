"""Failure-injection tests: the library must fail loudly and specifically
when fed inconsistent or degenerate problems, not produce silent garbage."""

import numpy as np
import pytest

from repro.core import ADMMConfig, BenchmarkADMM, SolverFreeADMM
from repro.core.batch import BatchedLocalSolver
from repro.decomposition import decompose
from repro.formulation import Row, build_centralized_lp
from repro.network import Bus, DistributionNetwork, Generator, Line, Load
from repro.utils.exceptions import (
    DecompositionError,
    DivergenceError,
    InfeasibleError,
)


def tiny_net():
    net = DistributionNetwork(name="tiny")
    net.add_bus(Bus("a", (1,), w_min=1.0, w_max=1.0))
    net.add_bus(Bus("b", (1,)))
    net.add_line(Line("ab", "a", "b", (1,), r=[[0.01]], x=[[0.02]]))
    net.add_generator(Generator("g", "a", (1,)))
    net.add_load(Load("l", "b", (1,), p_ref=0.1))
    net.substation = "a"
    return net


class TestInconsistentLocalSystems:
    def test_contradictory_rows_raise(self):
        """Two rows fixing the same variable to different values must be
        caught at decomposition time, not at solve time."""
        net = tiny_net()
        lp = build_centralized_lp(net)
        bad = Row({("w", "b", 1): 1.0}, 0.9, ("bus", "b"), tag="pin-low")
        worse = Row({("w", "b", 1): 1.0}, 1.1, ("bus", "b"), tag="pin-high")
        lp.rows.extend([bad, worse])
        with pytest.raises(InfeasibleError, match="inconsistent"):
            decompose(lp)

    def test_foreign_variable_in_row_raises(self):
        net = tiny_net()
        lp = build_centralized_lp(net)
        # A bus-b row referencing bus-a-only generator variables violates
        # the consensus structure.
        alien = Row({("pg", "g", 1): 1.0}, 0.0, ("bus", "b"), tag="alien")
        lp.rows.append(alien)
        with pytest.raises(DecompositionError, match="foreign"):
            decompose(lp)

    def test_unknown_owner_raises(self):
        net = tiny_net()
        lp = build_centralized_lp(net)
        lp.rows.append(Row({("w", "b", 1): 1.0}, 1.0, ("bus", "nope"), tag="lost"))
        with pytest.raises(DecompositionError, match="unknown owner"):
            decompose(lp)


class TestDegenerateSolves:
    def test_infeasible_bounds_admm_does_not_converge(self):
        """With an impossible voltage band the termination criterion (16)
        must not fire — ADMM reports non-convergence rather than a fake
        solution."""
        net = tiny_net()
        net.buses["b"].w_min[:] = 1.5
        net.buses["b"].w_max[:] = 1.6
        lp = build_centralized_lp(net)
        dec = decompose(lp)
        res = SolverFreeADMM(dec, ADMMConfig(max_iter=3000)).solve()
        assert not res.converged
        # The consensus gap betrays the infeasibility.
        assert res.pres > 1e-3

    def test_tiny_network_without_loads(self):
        net = DistributionNetwork(name="bare")
        net.add_bus(Bus("a", (1,), w_min=1.0, w_max=1.0))
        net.add_bus(Bus("b", (1,)))
        net.add_line(Line("ab", "a", "b", (1,), r=[[0.01]], x=[[0.02]]))
        net.add_generator(Generator("g", "a", (1,)))
        net.substation = "a"
        lp = build_centralized_lp(net)
        res = SolverFreeADMM(decompose(lp), ADMMConfig(max_iter=20000)).solve()
        assert res.converged
        # Nothing to serve: optimal generation is ~0.
        assert abs(res.objective) < 1e-3


class TestDivergenceGuard:
    """Non-finite iterates must raise DivergenceError immediately, with the
    best (last all-finite) state attached — never burn the budget on NaN."""

    def dec(self):
        return decompose(build_centralized_lp(tiny_net()))

    def test_nan_seed_raises_at_first_iteration(self):
        solver = SolverFreeADMM(self.dec(), ADMMConfig(max_iter=100))
        lam0 = np.full(solver.dec.n_local, np.nan)
        with pytest.raises(DivergenceError, match="non-finite iterate") as exc_info:
            solver.solve(lam0=lam0)
        err = exc_info.value
        assert err.iteration == 1
        assert err.result is None  # no finite state ever existed

    def test_midway_corruption_carries_best_so_far(self):
        solver = SolverFreeADMM(self.dec(), ADMMConfig(max_iter=100, eps_rel=1e-12))

        def poison(iteration, x, z, lam, res):
            if iteration == 5:
                lam[0] = np.inf

        with pytest.raises(DivergenceError) as exc_info:
            solver.solve(callback=poison)
        err = exc_info.value
        assert err.iteration == 6
        assert err.result is not None
        assert err.result.iterations == 5
        assert np.isfinite(err.result.x).all()
        assert not err.result.converged

    def test_guard_disabled_runs_to_budget(self):
        cfg = ADMMConfig(max_iter=20, divergence_guard=False)
        solver = SolverFreeADMM(self.dec(), cfg)
        res = solver.solve(lam0=np.full(solver.dec.n_local, np.nan))
        assert not res.converged
        assert res.iterations == 20
        assert not np.isfinite(res.pres)

    def test_benchmark_admm_guard(self):
        solver = BenchmarkADMM(self.dec(), ADMMConfig(max_iter=100))
        lam0 = np.full(solver.dec.n_local, np.nan)
        with pytest.raises(DivergenceError, match="non-finite iterate") as exc_info:
            solver.solve(lam0=lam0)
        assert exc_info.value.iteration == 1


class TestBatchDegeneracy:
    def test_wide_flat_component(self, rng):
        """A component with a single row over many variables (m << n)."""
        a = rng.standard_normal((1, 12))
        b = np.array([0.7])

        class Comp:
            n_vars = 12

        comp = Comp()
        comp.a = a
        comp.b = b
        solver = BatchedLocalSolver.from_parts([comp], np.array([0, 12]))
        v = rng.standard_normal(12)
        z = solver.solve(v)
        np.testing.assert_allclose(a @ z, b, atol=1e-10)

    def test_square_full_rank_component_is_point(self, rng):
        """m == n: the feasible set is a single point; the projection must
        return it regardless of the input."""
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        x_star = rng.standard_normal(5)
        b = a @ x_star

        class Comp:
            n_vars = 5

        comp = Comp()
        comp.a = a
        comp.b = b
        solver = BatchedLocalSolver.from_parts([comp], np.array([0, 5]))
        for _ in range(3):
            z = solver.solve(rng.standard_normal(5))
            np.testing.assert_allclose(z, x_star, atol=1e-8)
