"""Serving-layer tests for the stochastic and multi-period workloads."""

import pytest

from repro.fleet import HashRing
from repro.serve import (
    STATUS_CONVERGED,
    STATUS_ERROR,
    MultiPeriodRequest,
    MultiPeriodResponse,
    OPFRequest,
    ScenarioEngine,
    SolveOptions,
    StochasticRequest,
    StochasticResponse,
)

#: Stochastic serving options (rho = 10, see docs/STOCHASTIC.md).
OPTS = SolveOptions(rho=10.0, eps_rel=1e-3, max_iter=40_000)


def _request(request_id="st0", **kw):
    kw.setdefault("feeder", "ieee13-der")
    kw.setdefault("n_scenarios", 6)
    kw.setdefault("seed", 9)
    kw.setdefault("der_setpoints", {"der671": 0.08, "der675": 0.05})
    kw.setdefault("options", OPTS)
    return StochasticRequest(request_id=request_id, **kw)


class TestStochasticRequest:
    def test_topology_key_matches_plain_opf(self):
        """Scenario-set requests must share the feeder's cached plan (and
        its fleet affinity worker) with ordinary OPF traffic."""
        st = _request()
        opf = OPFRequest(request_id="x", feeder="ieee13-der")
        assert st.topology_key() == opf.topology_key()
        ring = HashRing(["w0", "w1", "w2", "w3"])
        assert ring.route(st.topology_key()) == ring.route(opf.topology_key())

    def test_expansion_deterministic(self):
        eng = ScenarioEngine()
        net = eng.plan_for(_request()).net
        a = _request().expand(net)
        b = _request().expand(net)
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]
        assert len(a) == 6
        assert a[0].request_id == "st0/s0"

    def test_children_share_first_stage(self):
        eng = ScenarioEngine()
        net = eng.plan_for(_request()).net
        for child in _request().expand(net):
            assert child.der_setpoints == {"der671": 0.08, "der675": 0.05}

    def test_scenario_key_depends_on_seed(self):
        assert _request(seed=1).scenario_key() != _request(seed=2).scenario_key()

    def test_round_trip(self):
        req = _request()
        again = StochasticRequest.from_dict(req.to_dict())
        assert again == req

    def test_validation(self):
        with pytest.raises(ValueError, match="n_scenarios"):
            StochasticRequest(request_id="x", n_scenarios=0)
        with pytest.raises(ValueError, match="alpha"):
            StochasticRequest(request_id="x", alpha=1.5)


class TestStochasticServing:
    @pytest.fixture(scope="class")
    def served(self):
        eng = ScenarioEngine(max_batch=8, warm_start=False)
        [resp] = eng.serve([_request()])
        return eng, resp

    def test_converges_and_aggregates(self, served):
        _, resp = served
        assert isinstance(resp, StochasticResponse)
        assert resp.status == STATUS_CONVERGED
        assert resp.n_scenarios == 6
        assert len(resp.scenario_objectives) == 6
        assert resp.expected_cost is not None
        assert resp.cvar_cost >= resp.expected_cost - 1e-9
        assert resp.objective == pytest.approx(resp.cvar_cost)

    def test_metrics_recorded(self, served):
        eng, _ = served
        snap = eng.snapshot()
        assert snap["stochastic_requests"] == 1
        assert snap["stochastic_scenarios"] == 6

    def test_stacked_bit_identical_to_independent(self, served):
        """Acceptance criterion: the scenario-stacked solve returns
        bit-identical per-scenario objectives to serving the same
        scenarios as independent batch requests (numpy64)."""
        _, resp = served
        eng = ScenarioEngine(max_batch=8, warm_start=False)
        children = _request().expand(eng.plan_for(_request()).net)
        independent = eng.serve(children)
        assert [r.objective for r in independent] == resp.scenario_objectives

    def test_expansion_error_is_error_response(self):
        eng = ScenarioEngine(max_batch=8, warm_start=False)
        bad = _request(request_id="bad", der_setpoints={"nope": 0.1})
        [resp] = eng.serve([bad])
        assert resp.status == STATUS_ERROR
        assert "nope" in resp.error

    def test_mixed_with_plain_requests(self):
        eng = ScenarioEngine(max_batch=8, warm_start=False)
        plain = OPFRequest(request_id="p0", feeder="ieee13-der", options=OPTS)
        responses = eng.serve([plain, _request(request_id="st1", n_scenarios=4)])
        assert [r.request_id for r in responses] == ["p0", "st1"]
        assert all(r.status == STATUS_CONVERGED for r in responses)
        assert responses[1].n_scenarios == 4


class TestMultiPeriodServing:
    def test_schedule_served(self):
        eng = ScenarioEngine()
        req = MultiPeriodRequest(
            request_id="mp0",
            feeder="ieee13",
            load_profile=[0.7, 1.0, 1.2, 0.9],
            price_profile=[0.8, 1.0, 1.4, 0.9],
            storages=[
                {
                    "name": "bat675",
                    "bus": "675",
                    "p_ch_max": 0.05,
                    "p_dis_max": 0.05,
                    "energy_max": 0.2,
                    "soc0": 0.1,
                }
            ],
            window=3,
            options=OPTS,
        )
        [resp] = eng.serve([req])
        assert isinstance(resp, MultiPeriodResponse)
        assert resp.status == STATUS_CONVERGED
        assert resp.n_periods == 4
        assert len(resp.soc_trajectories["bat675"]) == 5
        assert resp.committed_cost == pytest.approx(resp.objective)
        assert eng.snapshot()["multiperiod_requests"] == 1

    def test_bad_storage_is_error_response(self):
        eng = ScenarioEngine()
        req = MultiPeriodRequest(
            request_id="mp1",
            load_profile=[1.0, 1.0],
            storages=[{"name": "s", "bus": "zz"}],
        )
        [resp] = eng.serve([req])
        assert resp.status == STATUS_ERROR

    def test_validation(self):
        with pytest.raises(ValueError, match="load_profile"):
            MultiPeriodRequest(request_id="x", load_profile=[])
