"""Tests for column equilibration: the scaled problem must be the same
problem in different units."""

import numpy as np
import pytest

from repro.decomposition import decompose
from repro.formulation.scaling import column_scales, scale_lp
from repro.reference import solve_reference


class TestColumnScales:
    def test_shape_and_positivity(self, ieee13_lp):
        d = column_scales(ieee13_lp)
        assert d.shape == (ieee13_lp.n_vars,)
        assert np.all(d > 0)

    def test_clip_respected(self, ieee13_lp):
        d = column_scales(ieee13_lp, clip=3.0)
        assert d.max() <= 3.0 + 1e-12
        assert d.min() >= 1.0 / 3.0 - 1e-12

    def test_uniform_columns_unscaled(self, ieee13_lp):
        """A column whose entries are all ~1 gets a scale of ~1."""
        d = column_scales(ieee13_lp, clip=1e6)
        vi = ieee13_lp.var_index
        # pb variables appear with coefficient 1 in balance and +-1 in the
        # wye/delta link rows.
        j = vi.index(("pb", "ld634", 1))
        assert d[j] == pytest.approx(1.0, rel=0.3)


class TestScaleLP:
    def test_reference_optimum_maps_across(self, ieee13_lp, ieee13_ref):
        scaled = scale_lp(ieee13_lp)
        ref_s = solve_reference(scaled.lp)
        x_back = scaled.unscale(ref_s.x)
        # Same optimum value and a feasible original-units solution.
        assert ref_s.objective == pytest.approx(ieee13_ref.objective, rel=1e-6)
        assert ieee13_lp.equality_violation(x_back) < 1e-6
        assert ieee13_lp.bound_violation(x_back) < 1e-8

    def test_feasible_points_correspond(self, ieee13_lp, ieee13_ref):
        scaled = scale_lp(ieee13_lp)
        x_s = scaled.scale_point(ieee13_ref.x)
        assert scaled.lp.equality_violation(x_s) < 1e-6
        assert scaled.lp.bound_violation(x_s) < 1e-8
        np.testing.assert_allclose(scaled.unscale(x_s), ieee13_ref.x)

    def test_objective_equivalence_on_random_points(self, ieee13_lp, rng):
        scaled = scale_lp(ieee13_lp)
        for _ in range(5):
            x = rng.standard_normal(ieee13_lp.n_vars)
            assert float(scaled.lp.cost @ scaled.scale_point(x)) == pytest.approx(
                float(ieee13_lp.cost @ x), rel=1e-9, abs=1e-12
            )

    def test_rows_keep_owners(self, ieee13_lp):
        scaled = scale_lp(ieee13_lp)
        assert [r.owner for r in scaled.lp.rows] == [r.owner for r in ieee13_lp.rows]

    def test_decomposable(self, ieee13_lp):
        scaled = scale_lp(ieee13_lp)
        dec = decompose(scaled.lp)
        assert dec.n_components == decompose(ieee13_lp).n_components

    def test_bad_scale_vector_rejected(self, ieee13_lp):
        with pytest.raises(ValueError, match="positive"):
            scale_lp(ieee13_lp, np.zeros(ieee13_lp.n_vars))
        with pytest.raises(ValueError, match="one entry per column"):
            scale_lp(ieee13_lp, np.ones(3))

    def test_identity_scale_is_noop(self, ieee13_lp):
        scaled = scale_lp(ieee13_lp, np.ones(ieee13_lp.n_vars))
        np.testing.assert_allclose(
            scaled.lp.a_matrix.toarray(), ieee13_lp.a_matrix.toarray()
        )
        np.testing.assert_allclose(scaled.lp.lb, ieee13_lp.lb)
        np.testing.assert_allclose(scaled.lp.cost, ieee13_lp.cost)
