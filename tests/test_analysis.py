"""Tests for the solution-analysis utilities."""

import numpy as np
import pytest

from repro.network.analysis import (
    line_loading,
    phase_imbalance,
    solution_report,
    substation_exchange,
    total_losses,
    voltage_profile,
)


class TestVoltageProfile:
    def test_profile_covers_all_bus_phases(self, ieee13_lp, ieee13_ref):
        profile = voltage_profile(ieee13_lp, ieee13_ref.x)
        n_expected = sum(b.n_phases for b in ieee13_lp.network.buses.values())
        assert len(profile.buses) == n_expected
        assert profile.magnitudes.shape == (n_expected,)

    def test_magnitudes_are_sqrt_of_w(self, ieee13_lp, ieee13_ref):
        profile = voltage_profile(ieee13_lp, ieee13_ref.x)
        vi = ieee13_lp.var_index
        i = profile.buses.index("632")
        w = ieee13_ref.x[vi.index(("w", "632", profile.phases[i]))]
        assert profile.magnitudes[i] == pytest.approx(np.sqrt(w))

    def test_bounds_consistent(self, ieee13_lp, ieee13_ref):
        profile = voltage_profile(ieee13_lp, ieee13_ref.x)
        assert profile.v_min <= profile.v_max
        assert 0.9 - 1e-6 <= profile.v_min <= profile.v_max <= 1.1 + 1e-6

    def test_worst_bus(self, ieee13_lp, ieee13_ref):
        profile = voltage_profile(ieee13_lp, ieee13_ref.x)
        bus, phase, mag = profile.worst_bus()
        assert mag == pytest.approx(profile.v_min)
        assert bus in ieee13_lp.network.buses


class TestPowerQuantities:
    def test_substation_matches_objective(self, ieee13_lp, ieee13_ref):
        """With unit cost on the single source, substation P equals the
        objective."""
        p, q = substation_exchange(ieee13_lp, ieee13_ref.x)
        assert p == pytest.approx(ieee13_ref.objective, rel=1e-9)

    def test_substation_requires_designation(self, ieee13_lp, ieee13_ref):
        net = ieee13_lp.network.copy()
        net.substation = None
        from repro.formulation import build_centralized_lp

        lp = build_centralized_lp(net)
        with pytest.raises(ValueError, match="no substation"):
            substation_exchange(lp, ieee13_ref.x)

    def test_losses_equal_generation_minus_withdrawals(self, ieee13_lp, ieee13_ref):
        """Summing the balance equations: generation = losses + shunt +
        bus withdrawals, so losses stay small and well below generation."""
        loss = total_losses(ieee13_lp, ieee13_ref.x)
        assert abs(loss) < 0.1 * ieee13_ref.objective

    def test_line_loading_in_unit_range(self, ieee13_lp, ieee13_ref):
        loading = line_loading(ieee13_lp, ieee13_ref.x)
        assert set(loading) == set(ieee13_lp.network.lines)
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in loading.values())


class TestImbalance:
    def test_single_phase_bus_zero(self, ieee13_lp, ieee13_ref):
        assert phase_imbalance(ieee13_lp, ieee13_ref.x, "611") == 0.0

    def test_unknown_bus(self, ieee13_lp, ieee13_ref):
        with pytest.raises(KeyError):
            phase_imbalance(ieee13_lp, ieee13_ref.x, "nope")

    def test_unbalanced_feeder_nonzero(self, ieee13_lp, ieee13_ref):
        """IEEE13 is famously unbalanced; 675 carries very different
        per-phase loads."""
        assert phase_imbalance(ieee13_lp, ieee13_ref.x, "675") > 1e-4


class TestReport:
    def test_report_fields(self, ieee13_lp, ieee13_solution):
        report = solution_report(ieee13_lp, ieee13_solution.x)
        for key in (
            "objective",
            "substation_p",
            "losses",
            "v_min",
            "v_max",
            "worst_bus",
            "max_loading",
            "equality_violation",
            "bound_violation",
        ):
            assert key in report
        assert report["bound_violation"] == 0.0
        assert report["v_min"] <= report["v_max"]
