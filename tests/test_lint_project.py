"""Tests for the whole-program lint phase: ProjectGraph, rules R100–R103,
the incremental cache, SARIF emission, and the golden import snapshot."""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    LintCache,
    LintEngine,
    ProjectGraph,
    engine_signature,
    format_sarif,
    get_rules,
)
from repro.lint.engine import discover

REPO = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).parent / "data" / "project_graph_imports.json"


def run_rules(tmp_path, files: dict[str, str], rules):
    """Write a fixture tree and run the selected rules over it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return LintEngine(get_rules(rules)).run([str(tmp_path)])


def messages(result):
    return [f"{f.path.split('/')[-1]}:{f.line}: {f.message}" for f in result.findings]


def build_graph(src_root: str) -> ProjectGraph:
    engine = LintEngine()
    analyses = [engine.analyze_file(p, r) for p, r in discover([src_root])]
    return ProjectGraph([a.module for a in analyses])


class TestProjectGraph:
    def test_module_naming_and_packages(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "__init__.py").write_text("")
        (tmp_path / "core" / "loop.py").write_text("import repro.core\n")
        graph = build_graph(str(tmp_path))
        assert set(graph.by_module) == {"repro.core", "repro.core.loop"}
        assert graph.by_module["repro.core.loop"].package == "core"

    def test_from_import_submodule_resolution(self, tmp_path):
        files = {
            "serve/__init__.py": "",
            "serve/engine.py": "",
            "fleet/f.py": "from repro.serve import engine\n",
        }
        for rel, src in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(src)
        graph = build_graph(str(tmp_path))
        edges = {(s, d) for s, d, _, _ in graph.import_edges()}
        assert ("repro.fleet.f", "repro.serve.engine") in edges

    def test_lazy_import_marked(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "a.py").write_text(
            "def f():\n    from repro.core import b\n    return b\n"
        )
        (tmp_path / "core" / "b.py").write_text("")
        graph = build_graph(str(tmp_path))
        lazies = [lazy for _, _, _, lazy in graph.import_edges()]
        assert lazies == [True]


class TestGoldenGraph:
    """The package-level import edges of src/repro are pinned.

    On a deliberate dependency change, regenerate with
    ``PYTHONPATH=src python tests/regen_project_graph.py`` and review the
    diff edge by edge.
    """

    def test_package_edges_match_golden(self):
        from tests.regen_project_graph import snapshot

        golden = json.loads(GOLDEN.read_text())["packages"]
        current = snapshot(str(REPO / "src"))
        assert current == golden, (
            "package-level import edges drifted from the golden snapshot — "
            "if deliberate, regenerate with "
            "`PYTHONPATH=src python tests/regen_project_graph.py`"
        )

    def test_no_serving_imports_from_below(self):
        golden = json.loads(GOLDEN.read_text())["packages"]
        lower = {
            "utils", "telemetry", "backend", "qp",
            "network", "formulation", "feeders",
            "core", "decomposition", "socp", "reference", "io",
            "parallel", "gpu", "resilience", "methods",
            "multiperiod", "stochastic",
        }
        for pkg in lower:
            assert not ({"serve", "fleet", "cli"} & set(golden.get(pkg, []))), (
                f"{pkg} imports serving/app code"
            )


class TestArchitectureLayering:
    def test_layering_escape_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "core/a.py": "from repro.serve import b\n",
                "serve/b.py": "",
            },
            ["R100"],
        )
        assert len(result.findings) == 1
        assert "layering escape" in result.findings[0].message

    def test_downward_import_clean(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "serve/b.py": "from repro.core import a\n",
                "core/a.py": "",
            },
            ["R100"],
        )
        assert result.findings == []

    def test_telemetry_outside_seam_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "decomposition/d.py": "from repro.telemetry import metrics\n",
                "telemetry/metrics.py": "",
            },
            ["R100"],
        )
        assert len(result.findings) == 1
        assert "adapter seams" in result.findings[0].message

    def test_telemetry_seam_allowed(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "utils/timing.py": "from repro.telemetry import metrics\n",
                "telemetry/metrics.py": "",
            },
            ["R100"],
        )
        assert result.findings == []

    def test_serving_layer_telemetry_allowed(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "serve/s.py": "from repro.telemetry import metrics\n",
                "telemetry/metrics.py": "",
            },
            ["R100"],
        )
        assert result.findings == []

    def test_eager_cycle_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": "from repro.core import a\n",
            },
            ["R100"],
        )
        assert len(result.findings) == 1
        assert "eager import cycle" in result.findings[0].message
        assert "repro.core.a -> repro.core.b -> repro.core.a" in (
            result.findings[0].message
        )

    def test_lazy_import_breaks_cycle(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": (
                    "def f():\n    from repro.core import a\n    return a\n"
                ),
            },
            ["R100"],
        )
        assert result.findings == []

    def test_init_reexport_not_a_cycle(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "core/__init__.py": "from repro.core import a\n",
                "core/a.py": "import repro.core\n",
            },
            ["R100"],
        )
        assert result.findings == []

    def test_unknown_package_flagged(self, tmp_path):
        result = run_rules(tmp_path, {"mystery/x.py": "x = 1\n"}, ["R100"])
        assert len(result.findings) == 1
        assert "not in the declared layer map" in result.findings[0].message

    def test_suppression_pragma_honoured(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "core/a.py": (
                    "from repro.serve import b  # repro-lint: disable=R100\n"
                ),
                "serve/b.py": "",
            },
            ["R100"],
        )
        assert result.findings == []
        assert result.suppressed == 1


R101_TEMPLATE = """\
from dataclasses import dataclass, field


@dataclass
class Req:
{fields}
    def topology_key(self):
        return hash(self.feeder)

    def scenario_key(self):
        return self._payload()

    def _payload(self):
        return (self.feeder, self.scale)
"""


class TestCacheKeyCompleteness:
    def _run(self, tmp_path, fields):
        return run_rules(
            tmp_path,
            {"serve/reqs.py": R101_TEMPLATE.format(fields=fields)},
            ["R101"],
        )

    def test_unkeyed_field_flagged(self, tmp_path):
        result = self._run(
            tmp_path,
            "    feeder: str\n    scale: float = 1.0\n    extra: int = 0\n\n",
        )
        assert len(result.findings) == 1
        assert "unkeyed field: Req.extra" in result.findings[0].message

    def test_all_keyed_clean(self, tmp_path):
        result = self._run(
            tmp_path, "    feeder: str\n    scale: float = 1.0\n\n"
        )
        assert result.findings == []

    def test_transitive_reads_count(self, tmp_path):
        # `scale` is read only by the _payload() helper scenario_key()
        # calls — the closure over self-calls must see it as keyed (the
        # clean run above already proves this; here the helper chain is
        # two hops deep).
        source = """\
from dataclasses import dataclass


@dataclass
class Req:
    feeder: str
    scale: float = 1.0

    def topology_key(self):
        return self._outer()

    def scenario_key(self):
        return self._outer()

    def _outer(self):
        return self._inner()

    def _inner(self):
        return (self.feeder, self.scale)
"""
        result = run_rules(tmp_path, {"serve/reqs.py": source}, ["R101"])
        assert result.findings == []

    def test_non_keying_pragma_accepted(self, tmp_path):
        result = self._run(
            tmp_path,
            "    feeder: str\n    scale: float = 1.0\n"
            "    request_id: str = \"\"  # repro-lint: non-keying=echo token\n\n",
        )
        assert result.findings == []

    def test_pragma_without_reason_flagged(self, tmp_path):
        result = self._run(
            tmp_path,
            "    feeder: str\n    scale: float = 1.0\n"
            "    request_id: str = \"\"  # repro-lint: non-keying\n\n",
        )
        assert len(result.findings) == 1
        assert "no reason" in result.findings[0].message

    def test_stale_pragma_flagged(self, tmp_path):
        result = self._run(
            tmp_path,
            "    feeder: str  # repro-lint: non-keying=wrong, it is keyed\n"
            "    scale: float = 1.0\n\n",
        )
        assert len(result.findings) == 1
        assert "stale non-keying pragma" in result.findings[0].message

    def test_non_dataclass_ignored(self, tmp_path):
        source = (
            "class Plain:\n"
            "    def topology_key(self):\n"
            "        return 1\n"
            "    def scenario_key(self):\n"
            "        return 2\n"
        )
        result = run_rules(tmp_path, {"serve/reqs.py": source}, ["R101"])
        assert result.findings == []


R102_REGISTRY = """\
METRIC_NAMES = frozenset({
    "serve.good",
    "serve.orphan",
})

SPAN_NAMES = frozenset({
    "serve.span",
})
"""


class TestTelemetryRegistry:
    def test_unregistered_and_orphan_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "telemetry/names.py": R102_REGISTRY,
                "serve/m.py": (
                    "def f(reg, tracer):\n"
                    "    reg.counter(\"serve.good\").inc()\n"
                    "    reg.counter(\"serve.typo\").inc()\n"
                    "    with tracer.span(\"serve.span\"):\n"
                    "        pass\n"
                ),
            },
            ["R102"],
        )
        assert len(result.findings) == 2
        msgs = " | ".join(f.message for f in result.findings)
        assert "'serve.typo' is not registered" in msgs
        assert "'serve.orphan' is never emitted" in msgs

    def test_fully_consistent_clean(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "telemetry/names.py": (
                    "METRIC_NAMES = frozenset({\"serve.good\"})\n"
                    "SPAN_NAMES = frozenset({\"serve.span\"})\n"
                ),
                "serve/m.py": (
                    "def f(reg, tracer):\n"
                    "    reg.counter(\"serve.good\").inc()\n"
                    "    with tracer.span(\"serve.span\"):\n"
                    "        pass\n"
                ),
            },
            ["R102"],
        )
        assert result.findings == []

    def test_tree_without_registry_skips(self, tmp_path):
        result = run_rules(
            tmp_path,
            {"serve/m.py": "def f(reg):\n    reg.counter(\"serve.x\").inc()\n"},
            ["R102"],
        )
        assert result.findings == []

    def test_repo_registry_is_complete(self):
        """Every literal metric/span in src/repro is registered and used —
        the cross-module tier-1 guarantee for the telemetry namespace."""
        result = LintEngine(get_rules(["R102"])).run([str(REPO / "src")])
        assert result.findings == [], messages(result)


R103_FIXTURE = """\
VERB_OK = "__ok__"
VERB_SENT_ONLY = "__sent__"
VERB_HANDLED_ONLY = "__handled__"
VERB_DEAD = "__dead__"
NOT_A_VERB = "plain string"


def send(q):
    q.put((VERB_OK, 1))
    q.put((VERB_SENT_ONLY, 2))


def handle(kind):
    if kind == VERB_OK:
        return 1
    if kind == VERB_HANDLED_ONLY:
        return 2
    return 0
"""


class TestWorkerProtocol:
    def test_one_sided_verbs_flagged(self, tmp_path):
        result = run_rules(tmp_path, {"fleet/w.py": R103_FIXTURE}, ["R103"])
        by_line = {f.line: f.message for f in result.findings}
        assert len(result.findings) == 3
        assert "sent but no handler" in by_line[2]  # VERB_SENT_ONLY
        assert "never sent" in by_line[3]  # VERB_HANDLED_ONLY
        assert "dead protocol surface" in by_line[4]  # VERB_DEAD

    def test_cross_module_send_and_handle_clean(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "fleet/proto.py": "VERB = \"__go__\"\n",
                "fleet/sender.py": (
                    "from repro.fleet.proto import VERB\n\n"
                    "def send(q):\n    q.put((VERB, None))\n"
                ),
                "fleet/worker.py": (
                    "from repro.fleet.proto import VERB\n\n"
                    "def handle(kind):\n    return kind == VERB\n"
                ),
            },
            ["R103"],
        )
        assert result.findings == []

    def test_membership_comparison_counts_as_handle(self, tmp_path):
        result = run_rules(
            tmp_path,
            {
                "fleet/w.py": (
                    "VA = \"__a__\"\nVB = \"__b__\"\n\n"
                    "def send(q):\n    q.put((VA, 1))\n    q.put((VB, 2))\n\n"
                    "def handle(kind):\n    return kind in (VA, VB)\n"
                ),
            },
            ["R103"],
        )
        assert result.findings == []

    def test_repo_protocol_is_two_sided(self):
        """Every __verb__ in src/repro has both a sender and a handler —
        the cross-module tier-1 guarantee for the fleet protocol."""
        result = LintEngine(get_rules(["R103"])).run([str(REPO / "src")])
        assert result.findings == [], messages(result)


class TestRepoCrossModuleClean:
    def test_all_project_rules_clean_on_src(self):
        """R100–R103 pass over the real tree with no baseline entries."""
        result = LintEngine(get_rules(["R100", "R101", "R102", "R103"])).run(
            [str(REPO / "src")]
        )
        assert result.findings == [], messages(result)


class TestIncrementalCache:
    def _tree(self, tmp_path, n_files=24, n_funcs=40):
        body = "".join(
            f"def f{i}(x):\n    y = x + {i}\n    return y * {i}\n\n"
            for i in range(n_funcs)
        )
        for k in range(n_files):
            p = tmp_path / "core" / f"m{k:02d}.py"
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(body)

    def _run(self, tmp_path, cache_path):
        engine = LintEngine()
        cache = LintCache(cache_path, engine_signature(engine.rule_ids()))
        t0 = time.perf_counter()
        result = engine.run([str(tmp_path / "core")], cache=cache)
        return result, time.perf_counter() - t0

    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        self._tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cold, _ = self._run(tmp_path, cache_path)
        warm, _ = self._run(tmp_path, cache_path)
        assert cold.cache_hits == 0 and cold.cache_misses == 24
        assert warm.cache_hits == 24 and warm.cache_misses == 0
        assert [f.fingerprint for f in warm.findings] == [
            f.fingerprint for f in cold.findings
        ]

    def test_warm_run_is_5x_faster(self, tmp_path):
        self._tree(tmp_path, n_files=30, n_funcs=120)
        cache_path = tmp_path / "cache.json"
        _, t_cold = self._run(tmp_path, cache_path)
        _, t_warm = self._run(tmp_path, cache_path)
        assert t_warm * 5 <= t_cold, (
            f"warm {t_warm:.3f}s not 5x faster than cold {t_cold:.3f}s"
        )

    def test_edited_file_reanalyzed_and_graph_sees_it(self, tmp_path):
        files = {
            "fleet/proto.py": "VERB = \"__go__\"\n",
            "fleet/sender.py": (
                "from repro.fleet.proto import VERB\n\n"
                "def send(q):\n    q.put((VERB, None))\n"
            ),
            "fleet/worker.py": (
                "from repro.fleet.proto import VERB\n\n"
                "def handle(kind):\n    return kind == VERB\n"
            ),
        }
        for rel, src in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(src)
        engine = LintEngine(get_rules(["R103"]))
        sig = engine_signature(engine.rule_ids())
        cache_path = tmp_path / "cache.json"
        first = engine.run(
            [str(tmp_path / "fleet")], cache=LintCache(cache_path, sig)
        )
        assert first.findings == []
        # Delete the handler: the finding must appear in proto.py even
        # though proto.py itself is untouched (cache hit) — the graph
        # pass recomputes over cached summaries.
        (tmp_path / "fleet" / "worker.py").write_text(
            "def handle(kind):\n    return False\n"
        )
        second = engine.run(
            [str(tmp_path / "fleet")], cache=LintCache(cache_path, sig)
        )
        assert second.cache_hits == 2 and second.cache_misses == 1
        assert len(second.findings) == 1
        assert "no handler" in second.findings[0].message
        assert second.findings[0].path.endswith("proto.py")

    def test_engine_signature_invalidates(self, tmp_path):
        self._tree(tmp_path, n_files=2, n_funcs=2)
        cache_path = tmp_path / "cache.json"
        engine = LintEngine()
        engine.run(
            [str(tmp_path / "core")],
            cache=LintCache(cache_path, engine_signature(engine.rule_ids())),
        )
        stale = engine.run(
            [str(tmp_path / "core")],
            cache=LintCache(cache_path, "different-signature"),
        )
        assert stale.cache_hits == 0 and stale.cache_misses == 2

    def test_corrupt_cache_discarded(self, tmp_path):
        self._tree(tmp_path, n_files=2, n_funcs=2)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("not json at all")
        engine = LintEngine()
        result = engine.run(
            [str(tmp_path / "core")],
            cache=LintCache(cache_path, engine_signature(engine.rule_ids())),
        )
        assert result.cache_misses == 2
        # And the bad file was replaced by a valid one.
        assert json.loads(cache_path.read_text())["version"] == 1

    def test_parallel_jobs_match_serial(self, tmp_path):
        self._tree(tmp_path, n_files=8, n_funcs=10)
        engine = LintEngine()
        serial = engine.run([str(tmp_path / "core")])
        parallel = engine.run([str(tmp_path / "core")], jobs=2)
        assert [f.fingerprint for f in parallel.findings] == [
            f.fingerprint for f in serial.findings
        ]
        assert parallel.files == serial.files == 8


class TestSarif:
    def _result(self, tmp_path):
        (tmp_path / "core").mkdir(exist_ok=True)
        (tmp_path / "core" / "mod.py").write_text(
            "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        )
        return LintEngine().run([str(tmp_path)])

    def test_sarif_structure(self, tmp_path):
        doc = json.loads(format_sarif(self._result(tmp_path)))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [r["id"] for r in driver["rules"]]
        assert len(ids) == len(set(ids))
        assert {"R000", "R001", "R100", "R103"} <= set(ids)
        res = run["results"][0]
        assert res["ruleId"] == "R001"
        assert res["level"] == "error"
        assert res["baselineState"] == "new"
        assert res["partialFingerprints"]["reproLint/v1"]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("core/mod.py")
        assert loc["region"]["startLine"] == 4

    def test_rule_index_points_at_descriptor(self, tmp_path):
        doc = json.loads(format_sarif(self._result(tmp_path)))
        run = doc["runs"][0]
        for res in run["results"]:
            descriptor = run["tool"]["driver"]["rules"][res["ruleIndex"]]
            assert descriptor["id"] == res["ruleId"]

    def test_baselined_findings_marked_unchanged(self, tmp_path):
        first = self._result(tmp_path)
        baseline = {f.fingerprint: f.to_dict() for f in first.findings}
        second = LintEngine().run([str(tmp_path)], baseline)
        doc = json.loads(format_sarif(second))
        states = [r["baselineState"] for r in doc["runs"][0]["results"]]
        assert states == ["unchanged"]

    def test_validates_against_schema_subset(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(
            (Path(__file__).parent / "data" / "sarif-2.1.0-subset.json").read_text()
        )
        doc = json.loads(format_sarif(self._result(tmp_path)))
        jsonschema.validate(doc, schema)

    def test_cli_sarif_format(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "mod.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"


class TestChangedScoping:
    def _git(self, cwd, *argv):
        subprocess.run(
            ["git", *argv],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(cwd),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    @pytest.fixture()
    def repo(self, tmp_path, monkeypatch):
        self._git(tmp_path, "init", "-q")
        core = tmp_path / "core"
        core.mkdir()
        (core / "clean.py").write_text("x = 1\n")
        (core / "dirty.py").write_text(
            "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        )
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_unchanged_tree_short_circuits(self, repo, capsys):
        assert main(["lint", str(repo), "--changed"]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_only_changed_files_report_per_file_findings(self, repo, capsys):
        # dirty.py has a pre-existing R001; clean.py gets a new one.  With
        # --changed scoping to clean.py only, dirty.py's finding is out of
        # scope and only the new one fails the run.
        (repo / "core" / "clean.py").write_text(
            "import numpy as np\n\ndef g(v):\n    return np.sum(v)\n"
        )
        code = main(["lint", str(repo), "--changed", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 1
        assert "clean.py" in out and "dirty.py" not in out

    def test_untracked_files_are_in_scope(self, repo, capsys):
        (repo / "core" / "brand_new.py").write_text(
            "import numpy as np\n\ndef g(v):\n    return np.sum(v)\n"
        )
        code = main(["lint", str(repo), "--changed", "--no-cache"])
        assert code == 1
        assert "brand_new.py" in capsys.readouterr().out
