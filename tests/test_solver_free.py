"""Tests for Algorithm 1 (solver-free ADMM)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ADMMConfig, SolverFreeADMM
from repro.utils.exceptions import ConvergenceError


class TestGlobalUpdate:
    def test_matches_scalar_formula(self, ieee13_dec, rng):
        """(13): per-coordinate clipped closed form equals the vectorized
        implementation (18)."""
        # Formula checks compare against fp64 scalar arithmetic — pin fp64.
        solver = SolverFreeADMM(ieee13_dec, backend="numpy64")
        z = rng.standard_normal(ieee13_dec.n_local)
        lam = rng.standard_normal(ieee13_dec.n_local)
        rho = 100.0
        x = solver.global_update(z, lam, rho)
        lp = ieee13_dec.lp
        for i in rng.choice(lp.n_vars, size=25, replace=False):
            num = 0.0
            cnt = 0
            for s, comp in enumerate(ieee13_dec.components):
                sl = ieee13_dec.component_slice(s)
                for j, g in enumerate(comp.global_cols):
                    if g == i:
                        num += z[sl][j] - lam[sl][j] / rho
                        cnt += 1
            xhat = (num - lp.cost[i] / rho) / cnt
            expected = min(max(xhat, lp.lb[i]), lp.ub[i])
            assert x[i] == pytest.approx(expected, rel=1e-10, abs=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(1.0, 1e4))
    def test_one_dimensional_optimality(self, rho):
        """Property: each coordinate of the global update minimizes its 1-D
        strongly convex objective over [lb, ub]."""
        # Build a tiny synthetic consensus problem by hand.
        rng = np.random.default_rng(int(rho * 1000) % 2**31)
        counts = rng.integers(1, 4)
        zs = rng.standard_normal(counts)
        lams = rng.standard_normal(counts)
        c = rng.standard_normal()
        lb, ub = sorted(rng.standard_normal(2))

        def obj(xi):
            return c * xi + np.sum(lams * xi) + rho / 2 * np.sum((xi - zs) ** 2)

        xhat = (np.sum(zs - lams / rho) - c / rho) / counts
        xstar = min(max(xhat, lb), ub)
        for probe in np.linspace(lb, ub, 7):
            assert obj(xstar) <= obj(probe) + 1e-9


class TestLocalUpdate:
    def test_paper_form_equivalence(self, ieee13_dec, rng):
        """(15a): x_s = (1/rho) Abar_s d_s + bbar_s with d_s = -rho*Bx - lam
        equals the projection form used in the implementation."""
        from repro.core.batch import projection_data

        solver = SolverFreeADMM(ieee13_dec, backend="numpy64")
        rho = 100.0
        x = rng.standard_normal(ieee13_dec.lp.n_vars)
        lam = rng.standard_normal(ieee13_dec.n_local)
        bx = x[ieee13_dec.global_cols]
        z = solver.local_update(bx, lam, rho)
        for s in [0, 3, len(ieee13_dec.components) - 1]:
            comp = ieee13_dec.components[s]
            sl = ieee13_dec.component_slice(s)
            mmat, bbar = projection_data(comp.a, comp.b)
            abar = -mmat  # Abar = A^T(AA^T)^{-1}A - I = -(M)
            d_s = -rho * x[comp.global_cols] - lam[sl]
            expected = abar @ d_s / rho + bbar
            np.testing.assert_allclose(z[sl], expected, atol=1e-9)


class TestConvergence:
    def test_ieee13_converges_to_reference(self, ieee13_solution, ieee13_ref):
        assert ieee13_solution.converged
        assert ieee13_ref.compare_objective(ieee13_solution.objective) < 5e-3

    def test_solution_respects_bounds_exactly(self, ieee13_solution, ieee13_lp):
        assert ieee13_lp.bound_violation(ieee13_solution.x) == 0.0

    def test_solution_nearly_satisfies_equalities(self, ieee13_solution, ieee13_lp):
        assert ieee13_lp.equality_violation(ieee13_solution.x) < 1e-2

    def test_history_recorded_and_monotone_tail(self, ieee13_solution):
        h = ieee13_solution.history
        assert len(h) == ieee13_solution.iterations
        pres = np.asarray(h.pres)
        # Residuals need not be monotone, but the tail must be far below the
        # head for a converged run.
        assert pres[-1] < 1e-2 * pres[0]

    def test_termination_criterion_holds_at_exit(self, ieee13_solution):
        h = ieee13_solution.history
        assert h.pres[-1] <= h.eps_prim[-1]
        assert h.dres[-1] <= h.eps_dual[-1]

    def test_max_iter_returns_unconverged(self, ieee13_dec):
        res = SolverFreeADMM(ieee13_dec, ADMMConfig(max_iter=3)).solve()
        assert not res.converged
        assert res.iterations == 3

    def test_max_iter_raise_flag(self, ieee13_dec):
        cfg = ADMMConfig(max_iter=3, raise_on_max_iter=True)
        with pytest.raises(ConvergenceError, match="no convergence"):
            SolverFreeADMM(ieee13_dec, cfg).solve()

    def test_callback_invoked_every_iteration(self, ieee13_dec):
        seen = []
        SolverFreeADMM(ieee13_dec, ADMMConfig(max_iter=5)).solve(
            callback=lambda it, x, z, lam, res: seen.append(it)
        )
        assert seen == [1, 2, 3, 4, 5]

    def test_deterministic_runs(self, ieee13_dec):
        r1 = SolverFreeADMM(ieee13_dec, ADMMConfig(max_iter=50)).solve()
        r2 = SolverFreeADMM(ieee13_dec, ADMMConfig(max_iter=50)).solve()
        np.testing.assert_array_equal(r1.x, r2.x)
        np.testing.assert_array_equal(r1.lam, r2.lam)

    def test_timers_cover_all_phases(self, ieee13_solution):
        assert set(ieee13_solution.timers) == {"global", "local", "dual", "residual"}
        assert all(v > 0 for v in ieee13_solution.timers.values())


class TestWarmStart:
    def test_warm_start_from_solution_converges_fast(self, ieee13_dec, ieee13_solution):
        solver = SolverFreeADMM(ieee13_dec)
        res = solver.solve(
            x0=ieee13_solution.x, z0=ieee13_solution.z, lam0=ieee13_solution.lam
        )
        assert res.converged
        assert res.iterations <= 3

    def test_bad_shapes_rejected(self, ieee13_dec):
        solver = SolverFreeADMM(ieee13_dec)
        with pytest.raises(ValueError, match="inconsistent shapes"):
            solver.solve(x0=np.zeros(3))


class TestResidualBalancing:
    def test_balancing_changes_rho_trace(self, small_dec):
        cfg = ADMMConfig(
            max_iter=4000, residual_balancing=True, balancing_every=25
        )
        res = SolverFreeADMM(small_dec, cfg).solve()
        rhos = set(res.history.rho)
        assert len(rhos) > 1, "balancing never adapted rho"

    def test_balancing_still_converges_to_reference(self, small_dec, small_ref):
        """Balancing shifts where the *relative* criterion (16) fires, so a
        tighter eps_rel is used to compare solution quality fairly."""
        cfg = ADMMConfig(eps_rel=2e-4, max_iter=100000, residual_balancing=True)
        res = SolverFreeADMM(small_dec, cfg).solve()
        assert res.converged
        # Balancing drives rho away from the (good) default on these LPs, so
        # the gap is looser — the ablation benchmark quantifies this.
        assert small_ref.compare_objective(res.objective) < 8e-2


class TestConfigValidation:
    def test_bad_rho(self):
        with pytest.raises(ValueError):
            ADMMConfig(rho=0.0)

    def test_bad_eps(self):
        with pytest.raises(ValueError):
            ADMMConfig(eps_rel=-1.0)

    def test_bad_balancing(self):
        with pytest.raises(ValueError):
            ADMMConfig(balancing_mu=0.5)
