"""Tests for the CSV feeder exchange format."""

import numpy as np
import pytest

from repro.formulation import build_centralized_lp
from repro.io.csv_feeder import load_network_csv, save_network_csv
from repro.utils.exceptions import NetworkValidationError


class TestRoundTrip:
    def test_structure_preserved(self, ieee13_net, tmp_path):
        save_network_csv(ieee13_net, tmp_path / "f")
        restored = load_network_csv(tmp_path / "f", name="ieee13")
        assert list(restored.buses) == list(ieee13_net.buses)
        assert list(restored.lines) == list(ieee13_net.lines)
        assert list(restored.loads) == list(ieee13_net.loads)
        assert restored.substation == ieee13_net.substation
        assert restored.mva_base == ieee13_net.mva_base

    def test_numerics_preserved(self, ieee13_net, tmp_path):
        save_network_csv(ieee13_net, tmp_path / "f")
        restored = load_network_csv(tmp_path / "f")
        for name, line in ieee13_net.lines.items():
            np.testing.assert_allclose(restored.lines[name].r, line.r)
            np.testing.assert_allclose(restored.lines[name].x, line.x)
            np.testing.assert_allclose(restored.lines[name].tap, line.tap)
        for name, load in ieee13_net.loads.items():
            np.testing.assert_allclose(restored.loads[name].p_ref, load.p_ref)
            assert restored.loads[name].connection == load.connection
            np.testing.assert_allclose(restored.loads[name].alpha, load.alpha)

    def test_same_lp_after_round_trip(self, ieee13_net, ieee13_lp, tmp_path):
        save_network_csv(ieee13_net, tmp_path / "f")
        lp2 = build_centralized_lp(load_network_csv(tmp_path / "f"))
        assert lp2.shape == ieee13_lp.shape
        np.testing.assert_allclose(lp2.b_vector, ieee13_lp.b_vector)
        np.testing.assert_allclose(
            lp2.a_matrix.toarray(), ieee13_lp.a_matrix.toarray()
        )

    def test_synthetic_round_trip(self, small_net, tmp_path):
        save_network_csv(small_net, tmp_path / "s")
        restored = load_network_csv(tmp_path / "s")
        assert restored.n_buses == small_net.n_buses
        assert restored.total_load_p == pytest.approx(small_net.total_load_p)


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(NetworkValidationError, match="no buses.csv"):
            load_network_csv(tmp_path / "nope")

    def test_missing_phases_column(self, tmp_path):
        d = tmp_path / "bad"
        d.mkdir()
        (d / "buses.csv").write_text("name,phases\nb1,\n")
        with pytest.raises(NetworkValidationError, match="missing phases"):
            load_network_csv(d)

    def test_defaults_applied(self, tmp_path):
        d = tmp_path / "mini"
        d.mkdir()
        (d / "buses.csv").write_text("name,phases,substation\nroot,123,1\n")
        (d / "generators.csv").write_text("name,bus,phases\ng,root,123\n")
        net = load_network_csv(d)
        assert net.substation == "root"
        bus = net.buses["root"]
        np.testing.assert_allclose(bus.w_min, 0.81)
        gen = net.generators["g"]
        assert gen.cost == 1.0
        np.testing.assert_allclose(gen.p_max, 10.0)
