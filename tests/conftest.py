"""Shared fixtures: feeders and their assembled/decomposed/solved forms.

Expensive artifacts (reference LP solves, decompositions) are session-scoped
— tests must not mutate them.  Tests that need a mutable network build their
own via the factory fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ADMMConfig, SolverFreeADMM
from repro.decomposition import decompose
from repro.feeders import SyntheticFeederSpec, build_synthetic_feeder, ieee13
from repro.formulation import build_centralized_lp
from repro.reference import solve_reference


@pytest.fixture(scope="session")
def ieee13_net():
    return ieee13()


@pytest.fixture(scope="session")
def ieee13_lp(ieee13_net):
    return build_centralized_lp(ieee13_net)


@pytest.fixture(scope="session")
def ieee13_dec(ieee13_lp):
    return decompose(ieee13_lp)


@pytest.fixture(scope="session")
def ieee13_ref(ieee13_lp):
    return solve_reference(ieee13_lp)


@pytest.fixture(scope="session")
def ieee13_solution(ieee13_dec):
    """A converged solver-free result on IEEE13 (paper defaults)."""
    return SolverFreeADMM(ieee13_dec, ADMMConfig(max_iter=20000)).solve()


@pytest.fixture(scope="session")
def small_net():
    """A small deterministic synthetic feeder (fast end-to-end runs)."""
    return build_synthetic_feeder(
        SyntheticFeederSpec(name="small", n_buses=25, seed=7, load_density=0.8)
    )


@pytest.fixture(scope="session")
def small_lp(small_net):
    return build_centralized_lp(small_net)


@pytest.fixture(scope="session")
def small_dec(small_lp):
    return decompose(small_lp)


@pytest.fixture(scope="session")
def small_ref(small_lp):
    return solve_reference(small_lp)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
