"""Tests for the linearized flow rows (5a)-(5c) and the M matrices."""

import math

import numpy as np
import pytest

from repro.formulation.flow import flow_rows, voltage_drop_matrices
from repro.network.components import Line

SQRT3 = math.sqrt(3.0)


def three_phase_line(**kw):
    r = np.array([[0.3, 0.1, 0.11], [0.1, 0.33, 0.12], [0.11, 0.12, 0.31]])
    x = np.array([[1.0, 0.5, 0.42], [0.5, 1.04, 0.38], [0.42, 0.38, 1.03]])
    return Line("e", "i", "j", (1, 2, 3), r=r, x=x, **kw)


class TestVoltageDropMatrices:
    def test_paper_closed_form_3phase(self):
        """M^p and M^q must match the explicit matrices in Section II-A.4."""
        line = three_phase_line()
        mp, mq = voltage_drop_matrices(line)
        r, x = line.r, line.x
        mp_expected = np.array(
            [
                [-2 * r[0, 0], r[0, 1] - SQRT3 * x[0, 1], r[0, 2] + SQRT3 * x[0, 2]],
                [r[1, 0] + SQRT3 * x[1, 0], -2 * r[1, 1], r[1, 2] - SQRT3 * x[1, 2]],
                [r[2, 0] - SQRT3 * x[2, 0], r[2, 1] + SQRT3 * x[2, 1], -2 * r[2, 2]],
            ]
        )
        mq_expected = np.array(
            [
                [-2 * x[0, 0], x[0, 1] + SQRT3 * r[0, 1], x[0, 2] - SQRT3 * r[0, 2]],
                [x[1, 0] - SQRT3 * r[1, 0], -2 * x[1, 1], x[1, 2] + SQRT3 * r[1, 2]],
                [x[2, 0] + SQRT3 * r[2, 0], x[2, 1] - SQRT3 * r[2, 1], -2 * x[2, 2]],
            ]
        )
        np.testing.assert_allclose(mp, mp_expected)
        np.testing.assert_allclose(mq, mq_expected)

    def test_two_phase_restriction_keeps_absolute_identity(self):
        """The (2,3) submatrix must use the sign pattern of phases 2 and 3,
        not of positions 0 and 1."""
        full = three_phase_line()
        mp_full, mq_full = voltage_drop_matrices(full)
        sub = Line(
            "e23",
            "i",
            "j",
            (2, 3),
            r=full.r[np.ix_([1, 2], [1, 2])],
            x=full.x[np.ix_([1, 2], [1, 2])],
        )
        mp_sub, mq_sub = voltage_drop_matrices(sub)
        np.testing.assert_allclose(mp_sub, mp_full[np.ix_([1, 2], [1, 2])])
        np.testing.assert_allclose(mq_sub, mq_full[np.ix_([1, 2], [1, 2])])

    def test_single_phase_diagonal(self):
        line = Line("e", "i", "j", (2,), r=[[0.5]], x=[[0.8]])
        mp, mq = voltage_drop_matrices(line)
        np.testing.assert_allclose(mp, [[-1.0]])
        np.testing.assert_allclose(mq, [[-1.6]])


class TestFlowRows:
    def test_row_count_three_per_phase(self):
        assert len(flow_rows(three_phase_line())) == 9
        line = Line("e", "i", "j", (1, 3), r=np.eye(2) * 0.1, x=np.eye(2) * 0.2)
        assert len(flow_rows(line)) == 6

    def test_loss_row_with_shunts(self):
        line = Line(
            "e", "i", "j", (1,), r=[[0.1]], x=[[0.2]],
            g_sh_fr=0.03, g_sh_to=0.04, b_sh_fr=0.05, b_sh_to=0.06,
        )
        rows = flow_rows(line)
        p_row = next(r for r in rows if r.tag.startswith("flow-p"))
        assert p_row.coeffs[("pf", "e", 1)] == 1.0
        assert p_row.coeffs[("pt", "e", 1)] == 1.0
        assert p_row.coeffs[("w", "i", 1)] == pytest.approx(-0.03)
        assert p_row.coeffs[("w", "j", 1)] == pytest.approx(-0.04)
        q_row = next(r for r in rows if r.tag.startswith("flow-q"))
        assert q_row.coeffs[("w", "i", 1)] == pytest.approx(0.05)
        assert q_row.coeffs[("w", "j", 1)] == pytest.approx(0.06)

    def test_lossless_line_without_shunts(self):
        rows = flow_rows(three_phase_line())
        p_row = next(r for r in rows if r.tag == "flow-p:e:1")
        # No shunt: w coefficients vanish entirely.
        assert all(k[0] != "w" for k in p_row.coeffs)

    def test_voltage_drop_row_structure(self):
        line = Line("e", "i", "j", (1,), r=[[0.1]], x=[[0.2]])
        rows = flow_rows(line)
        v_row = next(r for r in rows if r.tag.startswith("vdrop"))
        assert v_row.coeffs[("w", "i", 1)] == pytest.approx(1.0)
        assert v_row.coeffs[("w", "j", 1)] == pytest.approx(-1.0)
        assert v_row.coeffs[("pf", "e", 1)] == pytest.approx(-0.2)  # -2r
        assert v_row.coeffs[("qf", "e", 1)] == pytest.approx(-0.4)  # -2x
        # Only from-side flows enter (5c).
        assert ("pt", "e", 1) not in v_row.coeffs

    def test_tap_enters_voltage_drop(self):
        line = Line("e", "i", "j", (1,), tap=0.9)
        v_row = next(r for r in flow_rows(line) if r.tag.startswith("vdrop"))
        assert v_row.coeffs[("w", "j", 1)] == pytest.approx(-0.9)

    def test_balanced_voltage_satisfies_drop_row_at_no_flow(self):
        """With zero flow and flat voltage (w=1 everywhere, tap=1), the
        voltage-drop rows must be satisfied exactly."""
        rows = flow_rows(three_phase_line())
        for row in rows:
            if not row.tag.startswith("vdrop"):
                continue
            residual = -row.rhs
            for key, coef in row.coeffs.items():
                value = 1.0 if key[0] == "w" else 0.0
                residual += coef * value
            assert residual == pytest.approx(0.0, abs=1e-12)

    def test_owner_is_line(self):
        assert all(r.owner == ("line", "e") for r in flow_rows(three_phase_line()))
