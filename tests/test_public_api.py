"""Public API surface tests: the package exposes what the README promises."""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim (small iteration cap to
        stay fast; convergence is covered elsewhere)."""
        net = repro.ieee13()
        lp = repro.build_centralized_lp(net)
        dec = repro.decompose(lp)
        result = repro.SolverFreeADMM(dec, repro.ADMMConfig(max_iter=50)).solve()
        assert result.iterations == 50

    def test_subpackages_importable(self):
        import repro.core
        import repro.decomposition
        import repro.feeders
        import repro.formulation
        import repro.gpu
        import repro.io
        import repro.multiperiod
        import repro.network
        import repro.parallel
        import repro.qp
        import repro.reference
        import repro.serve
        import repro.socp
        import repro.utils

        for mod in (
            repro.core,
            repro.decomposition,
            repro.feeders,
            repro.formulation,
            repro.gpu,
            repro.io,
            repro.multiperiod,
            repro.network,
            repro.parallel,
            repro.qp,
            repro.reference,
            repro.serve,
            repro.socp,
            repro.utils,
        ):
            assert mod.__doc__, f"{mod.__name__} missing module docstring"
            assert hasattr(mod, "__all__") or mod.__name__ == "repro.utils"
