"""Unit and property tests for RREF row reduction."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.decomposition.rowreduce import reduced_row_echelon, row_rank
from repro.utils.exceptions import InfeasibleError


def reduce_or_assume(a, b):
    """Row-reduce, assuming away near-degenerate draws.

    A consistent system whose rows sit at the pivot-tolerance boundary
    (coefficients ~tol*scale, residual rhs just above it) is declared
    inconsistent by the tolerance logic; the properties below are about
    systems the reduction accepts (same convention as test_qp).
    """
    try:
        return reduced_row_echelon(a, b)
    except InfeasibleError:
        assume(False)


class TestBasics:
    def test_already_full_rank(self):
        a = np.array([[1.0, 0.0], [0.0, 2.0]])
        b = np.array([3.0, 4.0])
        ar, br, piv = reduced_row_echelon(a, b)
        assert ar.shape == (2, 2)
        assert piv == [0, 1]
        # Same solution set.
        x = np.linalg.solve(a, b)
        np.testing.assert_allclose(ar @ x, br)

    def test_duplicate_row_dropped(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        b = np.array([3.0, 6.0])
        ar, br, _ = reduced_row_echelon(a, b)
        assert ar.shape == (1, 2)

    def test_inconsistent_raises(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        b = np.array([3.0, 7.0])
        with pytest.raises(InfeasibleError, match="inconsistent"):
            reduced_row_echelon(a, b)

    def test_zero_matrix(self):
        ar, br, piv = reduced_row_echelon(np.zeros((3, 2)), np.zeros(3))
        assert ar.shape == (0, 2)
        assert piv == []

    def test_zero_matrix_nonzero_rhs_raises(self):
        with pytest.raises(InfeasibleError):
            reduced_row_echelon(np.zeros((2, 2)), np.array([0.0, 1.0]))

    def test_empty_system(self):
        ar, br, piv = reduced_row_echelon(np.zeros((0, 3)), np.zeros(0))
        assert ar.shape == (0, 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            reduced_row_echelon(np.eye(2), np.zeros(3))

    def test_row_rank(self):
        a = np.array([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]])
        assert row_rank(a) == 2


@st.composite
def consistent_system(draw):
    """Random (possibly rank-deficient) consistent systems Ax = b."""
    n = draw(st.integers(2, 6))
    m = draw(st.integers(1, 8))
    a = draw(
        arrays(np.float64, (m, n), elements=st.floats(-5, 5, allow_nan=False))
    )
    x = draw(arrays(np.float64, (n,), elements=st.floats(-3, 3, allow_nan=False)))
    return a, a @ x, x


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(consistent_system())
    def test_full_row_rank_and_solution_preserved(self, sys_):
        a, b, x = sys_
        ar, br, piv = reduce_or_assume(a, b)
        # The generating solution still satisfies the reduced system.
        np.testing.assert_allclose(ar @ x, br, atol=1e-7)
        # Full row rank: pivots are distinct columns, one per row.
        assert len(piv) == ar.shape[0] == len(set(piv))
        if ar.shape[0]:
            assert np.linalg.matrix_rank(ar) == ar.shape[0]

    @settings(max_examples=60, deadline=None)
    @given(consistent_system())
    def test_row_space_preserved(self, sys_):
        """Any solution of the reduced system solves the original."""
        a, b, _ = sys_
        ar, br, _ = reduce_or_assume(a, b)
        y, *_ = np.linalg.lstsq(ar, br, rcond=None)
        # y is a solution of the reduced system (consistent by construction).
        np.testing.assert_allclose(ar @ y, br, atol=1e-7)
        np.testing.assert_allclose(a @ y, b, atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(consistent_system())
    def test_pivot_columns_identity_structure(self, sys_):
        """RREF: the pivot columns of the reduced matrix form an identity."""
        a, b, _ = sys_
        ar, _, piv = reduce_or_assume(a, b)
        if piv:
            np.testing.assert_allclose(ar[:, piv], np.eye(len(piv)), atol=1e-9)
