"""Smoke tests for the runnable examples (the fast ones run end-to-end;
the long-running studies are exercised piecewise by other tests)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_complete(self):
        names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart",
            "dynamic_reconfiguration",
            "der_hosting",
            "scaling_study",
            "private_compressed_consensus",
            "socp_relaxation",
            "multiperiod_storage",
            "fleet_failover",
        } <= names

    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "converged" in out
        assert "relative gap" in out

    def test_socp_relaxation_runs(self, capsys):
        load_example("socp_relaxation").main()
        out = capsys.readouterr().out
        assert "relaxation tightness" in out

    def test_fleet_failover_runs(self, capsys):
        load_example("fleet_failover").main()
        out = capsys.readouterr().out
        assert "no accepted request was lost" in out
        assert "w0: served  3  dead" in out

    @pytest.mark.parametrize(
        "name",
        [
            "dynamic_reconfiguration",
            "der_hosting",
            "scaling_study",
            "private_compressed_consensus",
            "multiperiod_storage",
        ],
    )
    def test_long_examples_importable(self, name):
        """The long studies must at least import cleanly (their main() is
        covered by the module-level tests of the features they exercise)."""
        module = load_example(name)
        assert callable(module.main)
