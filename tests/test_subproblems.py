"""Tests for component subproblem assembly and the consensus structure."""

import numpy as np

from repro.decomposition import decompose
from repro.decomposition.subproblems import component_variable_keys


class TestLocalKeys:
    def test_bus_component_key_families(self, ieee13_net, ieee13_dec):
        spec = next(s for s in ieee13_dec.specs if s.name == "bus:671")
        keys = component_variable_keys(ieee13_net, spec)
        kinds = {k[0] for k in keys}
        # 671 has loads and incident lines but no generator.
        assert "w" in kinds and "pb" in kinds and "pd" in kinds
        assert "pg" not in kinds
        # Incident-line flows appear only on the 671 side.
        flow_keys = [k for k in keys if k[0] in ("pf", "qf", "pt", "qt")]
        assert flow_keys, "bus component must own its incident flows"

    def test_line_component_keys(self, ieee13_net, ieee13_dec):
        spec = next(s for s in ieee13_dec.specs if s.kind == "line")
        keys = component_variable_keys(ieee13_net, spec)
        kinds = {k[0] for k in keys}
        assert kinds <= {"w", "pf", "qf", "pt", "qt"}
        line = ieee13_net.lines[spec.lines[0]]
        n_expected = 2 * len(line.phases) + 4 * len(line.phases)
        assert len(keys) == n_expected

    def test_leaf_component_dedups_shared_keys(self, ieee13_net, ieee13_dec):
        spec = next(s for s in ieee13_dec.specs if s.kind == "leaf")
        keys = component_variable_keys(ieee13_net, spec)
        assert len(keys) == len(set(keys))


class TestConsensusStructure:
    def test_b_matrix_row_sums_one(self, ieee13_dec):
        b = ieee13_dec.consensus_matrix()
        np.testing.assert_allclose(np.asarray(b.sum(axis=1)).ravel(), 1.0)

    def test_per_component_column_sums_binary(self, ieee13_dec):
        """Within one component, each global variable is copied at most once
        (the paper's B_s column-sum condition)."""
        for comp in ieee13_dec.components:
            assert len(np.unique(comp.global_cols)) == comp.n_vars

    def test_counts_match_consensus_matrix(self, ieee13_dec):
        b = ieee13_dec.consensus_matrix()
        col_counts = np.asarray(b.sum(axis=0)).ravel()
        np.testing.assert_allclose(col_counts, ieee13_dec.counts)

    def test_every_variable_covered(self, ieee13_dec):
        assert np.all(ieee13_dec.counts >= 1)

    def test_shared_variable_counts(self, ieee13_net, ieee13_dec):
        """Flows are shared by exactly 2 components (bus side + line);
        voltages by 1 + number of incident lines carrying the phase."""
        vi = ieee13_dec.lp.var_index
        counts = ieee13_dec.counts
        # A flow variable on a non-leaf-merged line.
        spec = next(s for s in ieee13_dec.specs if s.kind == "line")
        line = ieee13_net.lines[spec.lines[0]]
        phi = line.phases[0]
        assert counts[vi.index(("pf", line.name, phi))] == 2
        # Substation voltage: bus + its incident lines at that phase.
        inc = sum(1 for l in ieee13_net.lines_at("650") if 1 in l.phases)
        assert counts[vi.index(("w", "650", 1))] == 1 + inc

    def test_offsets_partition_stacked_vector(self, ieee13_dec):
        sizes = [c.n_vars for c in ieee13_dec.components]
        assert ieee13_dec.offsets[0] == 0
        np.testing.assert_array_equal(np.diff(ieee13_dec.offsets), sizes)
        assert ieee13_dec.n_local == sum(sizes)


class TestStackEquivalence:
    def test_raw_stack_equals_centralized(self, ieee13_lp, ieee13_dec):
        """The decomposed model (9) is the centralized model (7) regrouped:
        vstack(A_s^raw B_s) equals A up to a row permutation."""
        a_stack, b_stack = ieee13_dec.stacked_raw_system()
        assert a_stack.shape == ieee13_lp.a_matrix.shape
        # Compare as multisets of rows via sorted dense representations.
        d1 = np.hstack([a_stack.toarray(), b_stack[:, None]])
        d2 = np.hstack([ieee13_lp.a_matrix.toarray(), ieee13_lp.b_vector[:, None]])
        order1 = np.lexsort(d1.T)
        order2 = np.lexsort(d2.T)
        np.testing.assert_allclose(d1[order1], d2[order2], atol=1e-12)

    def test_sum_ms_close_to_centralized_rows(self, ieee13_lp, ieee13_dec):
        """Table IV: sum m_s (after reduction) is at most the raw row count
        and within a few rows of it."""
        ms_stats, _ = ieee13_dec.size_stats()
        assert ms_stats.total <= ieee13_lp.n_rows
        assert ms_stats.total >= ieee13_lp.n_rows - ieee13_dec.n_components

    def test_reference_solution_satisfies_all_local_systems(
        self, ieee13_dec, ieee13_ref
    ):
        for comp in ieee13_dec.components:
            x_s = ieee13_ref.x[comp.global_cols]
            np.testing.assert_allclose(comp.a @ x_s, comp.b, atol=1e-6)

    def test_local_bounds_gather_global(self, ieee13_lp, ieee13_dec):
        for comp in ieee13_dec.components[:5]:
            np.testing.assert_array_equal(comp.lb, ieee13_lp.lb[comp.global_cols])
            np.testing.assert_array_equal(comp.ub, ieee13_lp.ub[comp.global_cols])


class TestSizeStats:
    def test_stats_fields(self, ieee13_dec):
        ms, ns = ieee13_dec.size_stats()
        assert ms.minimum <= ms.mean <= ms.maximum
        assert ns.total == ieee13_dec.n_local
        assert ms.stdev >= 0

    def test_full_rank_after_reduction(self, ieee13_dec):
        for comp in ieee13_dec.components:
            if comp.n_rows:
                assert np.linalg.matrix_rank(comp.a) == comp.n_rows

    def test_merge_ablation_changes_s(self, ieee13_lp):
        merged = decompose(ieee13_lp, merge_leaves=True)
        plain = decompose(ieee13_lp, merge_leaves=False)
        assert plain.n_components > merged.n_components
        assert (
            plain.n_components - merged.n_components
            == merged.partition_counts.n_leaves
        )
