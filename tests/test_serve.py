"""Tests for the batched scenario-serving engine (repro.serve)."""

import numpy as np
import pytest

from repro.serve import (
    STATUS_CONVERGED,
    STATUS_ERROR,
    STATUS_ITERATION_LIMIT,
    STATUS_REJECTED,
    BatchScheduler,
    BoundedRequestQueue,
    OPFRequest,
    QueueFullError,
    ScenarioEngine,
    SolveOptions,
    WarmStartCache,
    load_requests_json,
    save_requests_json,
)


def _sig(*values):
    return np.asarray(values, dtype=float)


class TestWarmStartCache:
    def test_miss_on_empty(self):
        cache = WarmStartCache(capacity=4)
        assert cache.lookup("topo", _sig(1.0)) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_hit_returns_nearest(self):
        cache = WarmStartCache(capacity=4)
        for i, scale in enumerate([1.0, 1.2, 1.4]):
            cache.store("topo", f"s{i}", _sig(scale), _sig(scale), _sig(scale), _sig(0.0), 100)
        entry, dist = cache.lookup("topo", _sig(1.19))
        assert entry.signature[0] == pytest.approx(1.2)
        assert dist == pytest.approx(0.01)
        assert cache.stats.hits == 1

    def test_topology_isolation(self):
        cache = WarmStartCache(capacity=4)
        cache.store("a", "s", _sig(1.0), _sig(1.0), _sig(1.0), _sig(0.0), 10)
        assert cache.lookup("b", _sig(1.0)) is None

    def test_shape_mismatch_is_miss(self):
        cache = WarmStartCache(capacity=4)
        cache.store("topo", "s", _sig(1.0), _sig(1.0), _sig(1.0), _sig(0.0), 10)
        assert cache.lookup("topo", _sig(1.0, 2.0)) is None

    def test_lru_eviction(self):
        cache = WarmStartCache(capacity=2)
        for i in range(3):
            cache.store("topo", f"s{i}", _sig(float(i)), _sig(0.0), _sig(0.0), _sig(0.0), 1)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # s0 was evicted; s1 and s2 remain
        entry, _ = cache.lookup("topo", _sig(0.0))
        assert entry.signature[0] == pytest.approx(1.0)

    def test_lookup_refreshes_lru_order(self):
        cache = WarmStartCache(capacity=2)
        cache.store("topo", "s0", _sig(0.0), _sig(0.0), _sig(0.0), _sig(0.0), 1)
        cache.store("topo", "s1", _sig(10.0), _sig(0.0), _sig(0.0), _sig(0.0), 1)
        cache.lookup("topo", _sig(0.0))  # touches s0 -> s1 becomes LRU
        cache.store("topo", "s2", _sig(20.0), _sig(0.0), _sig(0.0), _sig(0.0), 1)
        entry, _ = cache.lookup("topo", _sig(0.0))
        assert entry.signature[0] == pytest.approx(0.0)

    def test_stored_arrays_are_copies(self):
        cache = WarmStartCache(capacity=2)
        x = _sig(1.0)
        cache.store("topo", "s", _sig(0.0), x, _sig(0.0), _sig(0.0), 1)
        x[0] = 99.0
        entry, _ = cache.lookup("topo", _sig(0.0))
        assert entry.x[0] == pytest.approx(1.0)


class TestQueueAndScheduler:
    def test_backpressure_raises_when_full(self):
        queue = BoundedRequestQueue(maxsize=2)
        queue.submit(OPFRequest(request_id="a"))
        queue.submit(OPFRequest(request_id="b"))
        assert queue.full
        with pytest.raises(QueueFullError):
            queue.submit(OPFRequest(request_id="c"))
        assert len(queue) == 2

    def test_batch_groups_by_topology_key(self):
        queue = BoundedRequestQueue(maxsize=8)
        # interleave two topologies; keys depend only on the feeder string
        for i, feeder in enumerate(["f1", "f2", "f1", "f1", "f2"]):
            queue.submit(OPFRequest(request_id=f"r{i}", feeder=feeder))
        sched = BatchScheduler(queue, max_batch=4)
        first = sched.next_batch()
        assert [r.request_id for r in first] == ["r0", "r2", "r3"]
        second = sched.next_batch()
        assert [r.request_id for r in second] == ["r1", "r4"]
        assert sched.next_batch() == []

    def test_batch_window_respects_max_batch(self):
        queue = BoundedRequestQueue(maxsize=8)
        for i in range(5):
            queue.submit(OPFRequest(request_id=f"r{i}"))
        sched = BatchScheduler(queue, max_batch=3)
        assert len(sched.next_batch()) == 3
        assert len(sched.next_batch()) == 2

    def test_skipped_requests_keep_fifo_order(self):
        queue = BoundedRequestQueue(maxsize=8)
        for i, feeder in enumerate(["f2", "f1", "f2"]):
            queue.submit(OPFRequest(request_id=f"r{i}", feeder=feeder))
        queue.drain_matching(OPFRequest(request_id="x", feeder="f2").topology_key(), 10)
        assert [r.request_id for r in queue._items] == ["r1"]


class TestRequests:
    def test_topology_key_ignores_perturbations(self):
        a = OPFRequest(request_id="a", load_scale=1.3)
        b = OPFRequest(request_id="b", load_multipliers={"ld675": 0.8})
        assert a.topology_key() == b.topology_key()
        c = OPFRequest(request_id="c", feeder="ieee123")
        assert a.topology_key() != c.topology_key()

    def test_scenario_key_depends_on_perturbations(self):
        a = OPFRequest(request_id="a", load_scale=1.3)
        b = OPFRequest(request_id="b", load_scale=1.3)
        c = OPFRequest(request_id="c", load_scale=1.31)
        assert a.scenario_key() == b.scenario_key()
        assert a.scenario_key() != c.scenario_key()

    def test_json_round_trip(self, tmp_path):
        reqs = [
            OPFRequest(
                request_id="r0",
                load_scale=1.1,
                load_multipliers={"ld675": 0.9},
                gen_limits={"source": (None, 5.0)},
                options=SolveOptions(rho=50.0, max_iter=1000),
            ),
            OPFRequest(request_id="r1", der_setpoints={"pv1": 0.02}),
        ]
        path = tmp_path / "scenarios.json"
        save_requests_json(reqs, path)
        back = load_requests_json(path)
        assert [r.request_id for r in back] == ["r0", "r1"]
        assert back[0].options.rho == pytest.approx(50.0)
        assert back[0].gen_limits["source"] == (None, 5.0)
        assert back[1].der_setpoints == {"pv1": 0.02}

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            SolveOptions(rho=0.0)
        with pytest.raises(ValueError):
            OPFRequest(request_id="r", load_scale=-1.0)


@pytest.fixture(scope="module")
def served_engine():
    """One engine that served a cold batch then a perturbed warm batch."""
    engine = ScenarioEngine(max_batch=4, queue_size=16, cache_capacity=8)
    cold = [
        OPFRequest(request_id=f"cold{i}", load_scale=1.0 + 0.04 * i)
        for i in range(3)
    ]
    warm = [
        OPFRequest(request_id=f"warm{i}", load_scale=1.005 + 0.04 * i)
        for i in range(3)
    ]
    cold_resp = engine.serve(cold)
    warm_resp = engine.serve(warm)
    return engine, cold_resp, warm_resp


class TestScenarioEngine:
    def test_all_converge(self, served_engine):
        _, cold_resp, warm_resp = served_engine
        assert all(r.status == STATUS_CONVERGED for r in cold_resp + warm_resp)
        assert all(r.objective is not None for r in cold_resp + warm_resp)

    def test_warm_start_saves_iterations(self, served_engine):
        """A warm-started solve on a perturbed load converges in fewer
        iterations than the cold solve it was seeded from."""
        _, cold_resp, warm_resp = served_engine
        assert all(not r.warm_started for r in cold_resp)
        assert all(r.warm_started for r in warm_resp)
        mean_cold = np.mean([r.iterations for r in cold_resp])
        mean_warm = np.mean([r.iterations for r in warm_resp])
        assert mean_warm < mean_cold
        assert all(r.warm_distance is not None for r in warm_resp)

    def test_objectives_increase_with_load(self, served_engine):
        _, cold_resp, _ = served_engine
        objs = [r.objective for r in cold_resp]
        assert objs == sorted(objs)

    def test_metrics_snapshot(self, served_engine):
        engine, _, _ = served_engine
        snap = engine.snapshot()
        assert snap["served"] == 6
        assert snap["converged"] == 6
        assert snap["cache_hit_rate"] > 0
        assert snap["mean_warm_iterations"] < snap["mean_cold_iterations"]
        assert snap["factorizations_reused"] > 0
        assert snap["latency_p50_ms"] > 0

    def test_projection_cache_shares_factorizations(self, served_engine):
        engine, _, _ = served_engine
        plan = next(iter(engine.plans.values()))
        # line components carry no load terms: identical bytes across all
        # six scenarios, so far more reuses than fresh factorizations
        total = plan.factorizations_computed + plan.factorizations_reused
        assert total == 0  # drained into metrics by snapshot()

    def test_engine_rejects_when_queue_full(self):
        engine = ScenarioEngine(max_batch=2, queue_size=2)
        assert engine.submit(OPFRequest(request_id="a")) is None
        assert engine.submit(OPFRequest(request_id="b")) is None
        resp = engine.submit(OPFRequest(request_id="c"))
        assert resp is not None and resp.status == STATUS_REJECTED
        assert engine.metrics.rejected == 1

    def test_unknown_names_produce_error_responses(self):
        engine = ScenarioEngine(max_batch=4)
        resps = engine.serve(
            [
                OPFRequest(request_id="bad-load", load_multipliers={"nope": 1.1}),
                OPFRequest(request_id="bad-gen", der_setpoints={"nope": 0.1}),
            ]
        )
        assert all(r.status == STATUS_ERROR for r in resps)
        assert "nope" in resps[0].error

    def test_iteration_limit_status(self):
        engine = ScenarioEngine(max_batch=2)
        resps = engine.serve(
            [
                OPFRequest(
                    request_id="tight", options=SolveOptions(max_iter=5)
                )
            ]
        )
        assert resps[0].status == STATUS_ITERATION_LIMIT
        assert resps[0].iterations == 5

    def test_mixed_budgets_in_one_batch(self):
        """Per-scenario budgets: a tight-budget scenario hits its limit while
        its batchmate keeps iterating to convergence."""
        engine = ScenarioEngine(max_batch=4)
        resps = engine.serve(
            [
                OPFRequest(request_id="full", load_scale=1.0),
                OPFRequest(
                    request_id="tight",
                    load_scale=1.02,
                    options=SolveOptions(max_iter=10),
                ),
            ]
        )
        by_id = {r.request_id: r for r in resps}
        assert by_id["full"].status == STATUS_CONVERGED
        assert by_id["tight"].status == STATUS_ITERATION_LIMIT
        assert by_id["tight"].iterations == 10
        assert by_id["full"].iterations > 10

    def test_stacked_batch_matches_single_solves(self):
        """Scenarios solved together in one stacked batch follow the same
        iteration trajectory as cold solo solves: identical objectives and
        iteration counts."""
        scales = [1.0, 1.05, 1.1]
        batched = ScenarioEngine(max_batch=4)
        single = ScenarioEngine(max_batch=1)
        reqs = lambda: [  # noqa: E731 - tiny local factory
            OPFRequest(request_id=f"s{i}", load_scale=s)
            for i, s in enumerate(scales)
        ]
        rb = {r.request_id: r for r in batched.serve(reqs())}
        rs = {}
        for req in reqs():
            single.cache.clear()  # keep every solo solve cold
            rs.update({r.request_id: r for r in single.serve([req])})
        for rid in rb:
            assert rb[rid].objective == pytest.approx(rs[rid].objective, abs=1e-9)
            assert rb[rid].iterations == rs[rid].iterations

    def test_gen_limit_perturbation_changes_solution(self):
        engine = ScenarioEngine(max_batch=2)
        resps = engine.serve(
            [
                OPFRequest(request_id="base"),
                OPFRequest(request_id="capped", gen_limits={"source": (None, 0.3)}),
            ]
        )
        by_id = {r.request_id: r for r in resps}
        assert by_id["base"].status == STATUS_CONVERGED
        # substation capped below demand: scenario cannot meet the balance
        # exactly but the solve still terminates with a well-defined status
        assert by_id["capped"].status in (STATUS_CONVERGED, STATUS_ITERATION_LIMIT)


class TestServeBatchCLI:
    def test_cli_end_to_end(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.json"
        scen = tmp_path / "scenarios.json"
        rc = main(
            [
                "serve-batch",
                "--generate",
                "8",
                "--seed",
                "3",
                "--max-batch",
                "4",
                "--save-scenarios",
                str(scen),
                "--output",
                str(out),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "serving metrics" in captured
        assert scen.exists() and out.exists()
        import json

        report = json.loads(out.read_text())
        assert report["metrics"]["served"] == 8
        assert report["metrics"]["cache_hit_rate"] > 0
        assert len(report["responses"]) == 8


class TestServingMetrics:
    def test_warm_start_savings_no_data(self):
        from repro.serve.metrics import ServingMetrics

        m = ServingMetrics()
        assert m.warm_start_iteration_savings == 0.0
        # Warm data without a cold baseline still yields no savings claim.
        m.record_response("converged", 10, warm=True, latency_s=0.01)
        assert m.warm_start_iteration_savings == 0.0

    def test_warm_start_savings_zero_cold_mean(self):
        from repro.serve.metrics import ServingMetrics

        m = ServingMetrics()
        m.record_response("converged", 0, warm=False, latency_s=0.01)
        m.record_response("converged", 5, warm=True, latency_s=0.01)
        assert m.warm_start_iteration_savings == 0.0

    def test_warm_start_savings_basic(self):
        from repro.serve.metrics import ServingMetrics

        m = ServingMetrics()
        m.record_response("converged", 100, warm=False, latency_s=0.01)
        m.record_response("converged", 200, warm=False, latency_s=0.01)
        m.record_response("converged", 30, warm=True, latency_s=0.01)
        assert m.warm_start_iteration_savings == pytest.approx(1.0 - 30.0 / 150.0)

    def test_latency_memory_is_bounded(self):
        from repro.serve.metrics import RESERVOIR_SAMPLES, ServingMetrics

        m = ServingMetrics()
        n = RESERVOIR_SAMPLES + 500
        for i in range(n):
            m.record_response("converged", 50, warm=False, latency_s=1e-3 * (i + 1))
        assert m.latencies_s.count == n  # exact count survives the cap
        assert len(m.latencies_s) == RESERVOIR_SAMPLES  # sample is bounded
        assert m.served == n
        assert m.snapshot()["latency_p50_ms"] > 0.0

    def test_snapshot_has_queue_wait(self):
        from repro.serve.metrics import ServingMetrics

        m = ServingMetrics()
        m.record_queue_wait(0.002)
        snap = m.snapshot()
        assert snap["queue_wait_p50_ms"] == pytest.approx(2.0)
