"""Unit tests for the global variable registry."""

import numpy as np
import pytest

from repro.formulation.variables import VariableIndex


class TestRegistry:
    def test_sequential_indices(self):
        vi = VariableIndex()
        assert vi.add(("pg", "g1", 1)) == 0
        assert vi.add(("w", "b1", 1), lb=0.81, ub=1.21, is_voltage=True) == 1
        assert vi.n == 2
        assert vi.index(("w", "b1", 1)) == 1
        assert vi.key_of(0) == ("pg", "g1", 1)

    def test_duplicate_rejected(self):
        vi = VariableIndex()
        vi.add(("pg", "g1", 1))
        with pytest.raises(ValueError, match="duplicate"):
            vi.add(("pg", "g1", 1))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown variable kind"):
            VariableIndex().add(("zz", "x", 1))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="lb"):
            VariableIndex().add(("pg", "g", 1), lb=1.0, ub=0.0)

    def test_unknown_key_lookup(self):
        with pytest.raises(KeyError, match="unknown variable"):
            VariableIndex().index(("pg", "nope", 1))

    def test_contains_and_len(self):
        vi = VariableIndex()
        vi.add(("w", "b", 2))
        assert ("w", "b", 2) in vi
        assert ("w", "b", 3) not in vi
        assert len(vi) == 1


class TestVectors:
    def make(self):
        vi = VariableIndex()
        vi.add(("pg", "g", 1), lb=0.0, ub=2.0, cost=1.0)
        vi.add(("w", "b", 1), lb=0.81, ub=1.21, is_voltage=True)
        vi.add(("pb", "l", 1))  # unbounded
        vi.add(("pf", "e", 1), lb=-5.0, ub=5.0)
        return vi

    def test_bounds_and_costs(self):
        vi = self.make()
        np.testing.assert_allclose(vi.lower_bounds(), [0.0, 0.81, -np.inf, -5.0])
        np.testing.assert_allclose(vi.upper_bounds(), [2.0, 1.21, np.inf, 5.0])
        np.testing.assert_allclose(vi.costs(), [1.0, 0.0, 0.0, 0.0])

    def test_initial_point_rule(self):
        """The paper's rule: voltage -> 1, bounded -> midpoint, else 0."""
        x0 = self.make().initial_point()
        np.testing.assert_allclose(x0, [1.0, 1.0, 0.0, 0.0])

    def test_voltage_beats_midpoint(self):
        vi = VariableIndex()
        vi.add(("w", "b", 1), lb=0.5, ub=0.7, is_voltage=True)
        assert vi.initial_point()[0] == 1.0

    def test_indices_of_kind(self):
        vi = self.make()
        np.testing.assert_array_equal(vi.indices_of_kind("pg"), [0])
        np.testing.assert_array_equal(vi.indices_of_kind("w"), [1])
        with pytest.raises(ValueError):
            vi.indices_of_kind("nope")
