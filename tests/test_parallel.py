"""Tests for the simulated cluster and the real process-parallel executor."""

import numpy as np
import pytest

from repro.core import SolverFreeADMM
from repro.parallel import (
    CPU_CLUSTER_COMM,
    GPU_CLUSTER_COMM,
    CommModel,
    ProcessParallelLocalUpdate,
    SimulatedCluster,
    assign_even,
    assign_greedy,
    rank_loads,
    sweep_ranks,
)


class TestAssignment:
    def test_even_partition_sizes(self):
        owner = assign_even(10, 3)
        sizes = np.bincount(owner)
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_even_contiguous_blocks(self):
        owner = assign_even(7, 2)
        assert list(owner) == sorted(owner)

    def test_more_ranks_than_components(self):
        owner = assign_even(3, 10)
        assert owner.max() == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            assign_even(5, 0)
        with pytest.raises(ValueError):
            assign_even(0, 2)
        with pytest.raises(ValueError):
            assign_greedy(np.ones(3), 0)

    def test_greedy_beats_even_on_skewed_costs(self):
        costs = np.array([10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        even_max = rank_loads(costs, assign_even(8, 2), 2).max()
        greedy_max = rank_loads(costs, assign_greedy(costs, 2), 2).max()
        assert greedy_max <= even_max

    def test_rank_loads_total_preserved(self):
        costs = np.arange(1.0, 9.0)
        loads = rank_loads(costs, assign_even(8, 3), 3)
        assert loads.sum() == pytest.approx(costs.sum())


class TestCommModel:
    def test_message_time_affine(self):
        m = CommModel(latency_s=1e-6, bandwidth_bytes_s=1e9)
        assert m.message_time(0) == pytest.approx(1e-6)
        assert m.message_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_staging_adds_cost(self):
        assert GPU_CLUSTER_COMM.message_time(8000) > CPU_CLUSTER_COMM.message_time(8000)

    def test_gather_scatter_grows_with_ranks(self):
        m = CPU_CLUSTER_COMM
        t2 = m.gather_scatter_time(np.full(2, 1000.0))
        t8 = m.gather_scatter_time(np.full(8, 250.0))
        # Same total bytes, more messages -> more time (latency term).
        assert t8 > t2


class TestSimulatedCluster:
    def test_compute_decreases_comm_increases(self, ieee13_dec):
        solver = SolverFreeADMM(ieee13_dec)
        costs = solver.measure_local_costs(repeats=1)
        timings = sweep_ranks(ieee13_dec, costs, [1, 2, 4, 8], CPU_CLUSTER_COMM)
        computes = [t.compute_s for t in timings]
        comms = [t.comm_s for t in timings]
        assert computes == sorted(computes, reverse=True)
        assert comms == sorted(comms)
        assert comms[0] == 0.0  # single rank: no aggregator exchange

    def test_single_rank_equals_total_cost(self, ieee13_dec):
        costs = np.random.default_rng(0).uniform(1e-6, 1e-5, ieee13_dec.n_components)
        t = SimulatedCluster(ieee13_dec, costs, 1, CPU_CLUSTER_COMM).local_update_timing()
        assert t.compute_s == pytest.approx(costs.sum())

    def test_cost_shape_validated(self, ieee13_dec):
        with pytest.raises(ValueError, match="one entry per component"):
            SimulatedCluster(ieee13_dec, np.ones(3), 2, CPU_CLUSTER_COMM)

    def test_unknown_strategy(self, ieee13_dec):
        costs = np.ones(ieee13_dec.n_components)
        with pytest.raises(ValueError, match="unknown assignment"):
            SimulatedCluster(ieee13_dec, costs, 2, CPU_CLUSTER_COMM, strategy="zz")

    def test_greedy_no_worse_than_even(self, ieee13_dec):
        rng = np.random.default_rng(3)
        costs = rng.lognormal(-12, 1.0, ieee13_dec.n_components)
        even = SimulatedCluster(ieee13_dec, costs, 4, CPU_CLUSTER_COMM, "even")
        greedy = SimulatedCluster(ieee13_dec, costs, 4, CPU_CLUSTER_COMM, "greedy")
        assert (
            greedy.local_update_timing().compute_s
            <= even.local_update_timing().compute_s + 1e-12
        )

    def test_iteration_time_adds_global_and_dual(self, ieee13_dec):
        costs = np.full(ieee13_dec.n_components, 1e-6)
        cluster = SimulatedCluster(ieee13_dec, costs, 2, CPU_CLUSTER_COMM)
        t_local = cluster.local_update_timing().total_s
        assert cluster.iteration_time(1e-4, 2e-4) == pytest.approx(t_local + 3e-4)

    def test_bytes_proportional_to_local_dims(self, ieee13_dec):
        costs = np.ones(ieee13_dec.n_components)
        cluster = SimulatedCluster(ieee13_dec, costs, 2, CPU_CLUSTER_COMM)
        per_rank = cluster.per_rank_bytes()
        assert per_rank.sum() == pytest.approx(2 * 8 * ieee13_dec.n_local)


class TestProcessParallel:
    def test_parity_with_serial(self, ieee13_dec, rng):
        # Worker processes compute in fp64 — pin the in-process reference.
        solver = SolverFreeADMM(ieee13_dec, backend="numpy64")
        v = rng.standard_normal(ieee13_dec.n_local)
        z_serial = solver.local_solver.solve(v)
        with ProcessParallelLocalUpdate(ieee13_dec, n_workers=2) as par:
            z_par = par.solve(v)
        np.testing.assert_allclose(z_par, z_serial, atol=1e-12)

    def test_worker_count_capped_by_components(self, small_dec, rng):
        with ProcessParallelLocalUpdate(small_dec, n_workers=3) as par:
            assert par.n_workers == 3
            v = rng.standard_normal(small_dec.n_local)
            assert par.solve(v).shape == (small_dec.n_local,)

    def test_invalid_inputs(self, small_dec):
        with pytest.raises(ValueError, match="at least one worker"):
            ProcessParallelLocalUpdate(small_dec, n_workers=0)
        with ProcessParallelLocalUpdate(small_dec, n_workers=2) as par:
            with pytest.raises(ValueError, match="wrong length"):
                par.solve(np.zeros(3))
