"""Tests for convergence diagnostics."""

import numpy as np
import pytest

from repro.core import ADMMConfig, SolverFreeADMM
from repro.core.diagnostics import (
    consensus_gaps_by_kind,
    convergence_report,
    is_stalled,
    residual_tail_slope,
)


class TestKindGaps:
    def test_covers_all_copies(self, ieee13_dec, ieee13_solution):
        gaps = consensus_gaps_by_kind(ieee13_dec, ieee13_solution)
        assert sum(g.n_copies for g in gaps) == ieee13_dec.n_local
        kinds = {g.kind for g in gaps}
        assert "w" in kinds and "pf" in kinds

    def test_gap_statistics_consistent(self, ieee13_dec, ieee13_solution):
        for g in consensus_gaps_by_kind(ieee13_dec, ieee13_solution):
            assert 0.0 <= g.rms_gap <= g.max_gap + 1e-15

    def test_converged_gaps_small(self, ieee13_dec, ieee13_solution):
        gaps = consensus_gaps_by_kind(ieee13_dec, ieee13_solution)
        assert max(g.max_gap for g in gaps) < 1e-2


class TestTailSlope:
    def test_decaying_trace_negative(self):
        trace = np.exp(-0.01 * np.arange(500))
        assert residual_tail_slope(trace) < -0.005

    def test_flat_trace_zero(self):
        assert residual_tail_slope(np.ones(500)) == pytest.approx(0.0, abs=1e-12)

    def test_short_trace_safe(self):
        assert residual_tail_slope([1.0]) == 0.0
        assert residual_tail_slope([]) == 0.0

    def test_zeros_ignored(self):
        trace = [0.0] * 50 + [1.0, 0.5, 0.25, 0.125]
        assert residual_tail_slope(trace) < 0


class TestStall:
    def test_converged_run_not_stalled_midway(self, ieee13_dec):
        res = SolverFreeADMM(ieee13_dec, ADMMConfig(max_iter=500)).solve()
        # Early in the run the residuals are still falling.
        assert not is_stalled(res, window=400)

    def test_requires_history(self, ieee13_dec):
        res = SolverFreeADMM(
            ieee13_dec, ADMMConfig(max_iter=5, record_history=False)
        ).solve()
        with pytest.raises(ValueError, match="record_history"):
            is_stalled(res)


class TestReport:
    def test_fields(self, ieee13_dec, ieee13_solution):
        report = convergence_report(ieee13_dec, ieee13_solution)
        assert report["converged"] is True
        assert report["bound_violation"] == 0.0
        assert "max" in report["worst_consensus_kind"]
        assert isinstance(report["stalled"], bool)
