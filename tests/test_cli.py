"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, resolve_feeder


class TestResolveFeeder:
    def test_builtin(self):
        net = resolve_feeder("ieee13")
        assert net.name == "ieee13"

    def test_json_file(self, ieee13_net, tmp_path):
        from repro.io import save_network

        path = tmp_path / "net.json"
        save_network(ieee13_net, path)
        assert resolve_feeder(str(path)).n_buses == ieee13_net.n_buses

    def test_csv_directory(self, ieee13_net, tmp_path):
        from repro.io.csv_feeder import save_network_csv

        save_network_csv(ieee13_net, tmp_path / "f")
        assert resolve_feeder(str(tmp_path / "f")).n_buses == ieee13_net.n_buses

    def test_unknown_raises_systemexit(self):
        with pytest.raises(SystemExit, match="unknown feeder"):
            resolve_feeder("nope")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--feeder", "ieee13"]) == 0
        out = capsys.readouterr().out
        assert "S = 21" in out
        assert "250 x 253" in out

    def test_solve_converges(self, capsys, tmp_path):
        out_file = tmp_path / "res.json"
        code = main(
            [
                "solve",
                "--feeder",
                "ieee13",
                "--max-iter",
                "20000",
                "--output",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged" in out
        data = json.loads(out_file.read_text())
        assert data["converged"] is True

    def test_solve_nonconverged_exit_code(self, capsys):
        assert main(["solve", "--feeder", "ieee13", "--max-iter", "5"]) == 2

    def test_solve_benchmark_algorithm(self, capsys):
        code = main(
            [
                "solve",
                "--feeder",
                "ieee13",
                "--algorithm",
                "benchmark",
                "--max-iter",
                "5",
            ]
        )
        assert code == 2  # budget too small to converge, but runs

    def test_export_json_and_npz(self, capsys, tmp_path):
        assert main(["export", "--feeder", "ieee13", "--format", "json",
                     "--output", str(tmp_path / "n.json")]) == 0
        assert (tmp_path / "n.json").exists()
        assert main(["export", "--feeder", "ieee13", "--format", "npz",
                     "--output", str(tmp_path / "lp.npz")]) == 0
        assert (tmp_path / "lp.npz").exists()

    def test_bench_iteration(self, capsys):
        assert main(["bench-iteration", "--feeder", "ieee13",
                     "--iterations", "20", "--cpus", "4"]) == 0
        out = capsys.readouterr().out
        assert "modeled A100" in out

    def test_solve_require_convergence_exit_code(self, capsys):
        """--require-convergence escalates non-convergence from the soft
        exit code 2 to the hard error 3 with a diagnostic on stderr."""
        rc = main(["solve", "--feeder", "ieee13", "--max-iter", "5",
                   "--require-convergence"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "did not converge within 5 iterations" in err

    def test_serve_batch_require_convergence_exit_code(self, capsys, tmp_path):
        from repro.serve import OPFRequest, SolveOptions, save_requests_json

        scen = tmp_path / "scenarios.json"
        save_requests_json(
            [OPFRequest(request_id="tight", options=SolveOptions(max_iter=5))],
            scen,
        )
        rc = main(["serve-batch", "--scenarios", str(scen),
                   "--require-convergence"])
        assert rc == 3
        assert "1 of 1 scenarios did not converge" in capsys.readouterr().err

    def test_require_convergence_quiet_when_converged(self, capsys):
        rc = main(["solve", "--feeder", "ieee13", "--max-iter", "20000",
                   "--require-convergence"])
        assert rc == 0
        assert capsys.readouterr().err == ""

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTracing:
    def test_solve_trace_and_summary(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["solve", "--feeder", "ieee13", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "spans) written to" in out
        assert trace.exists()

        from repro.telemetry import load_trace_events

        names = {e.name for e in load_trace_events(trace)}
        assert {"admm.solve", "admm.global", "admm.local", "admm.dual"} <= names

        assert main(["trace-summary", str(trace)]) == 0
        table = capsys.readouterr().out
        assert "admm.local" in table and "share %" in table

    def test_serve_batch_trace_covers_all_layers(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main([
            "serve-batch", "--feeder", "ieee13", "--generate", "6",
            "--seed", "0", "--max-batch", "3", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()

        from repro.telemetry import TRACK_GPU, load_trace_events

        events = load_trace_events(trace)
        names = {e.name for e in events}
        # Engine layer, ADMM loop layer, and kernel-sim layer all present.
        assert {"serve.batch", "serve.solve", "serve.warm_lookup"} <= names
        assert {"admm.global", "admm.local", "admm.dual", "admm.residual"} <= names
        assert any(n.startswith("gpu.kernel.") for n in names)
        assert any(e.track == TRACK_GPU for e in events)

    def test_trace_summary_empty_trace_fails(self, tmp_path, capsys):
        trace = tmp_path / "empty.json"
        trace.write_text('{"traceEvents": []}')
        assert main(["trace-summary", str(trace)]) == 2
        assert "no spans" in capsys.readouterr().out.lower()

    def test_trace_summary_tagged_with_backend(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["solve", "--feeder", "ieee13", "--backend", "numpy32",
                     "--precision", "fp32", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace-summary", str(trace)]) == 0
        title = capsys.readouterr().out.splitlines()[0]
        assert "backend=numpy32" in title and "precision=fp32" in title


class TestBackendFlags:
    def test_backends_listing(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy64 *" in out  # default marker
        assert "numpy32" in out and "cupy" in out
        assert "REPRO_BACKEND" in out

    def test_backends_listing_honours_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy32")
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy32 *" in out
        assert "REPRO_BACKEND=numpy32" in out

    def test_solve_with_backend_flags(self, capsys):
        rc = main(["solve", "--feeder", "ieee13",
                   "--backend", "numpy32", "--precision", "fp32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend: numpy32 (precision fp32, compute float32)" in out
        assert "converged" in out

    def test_solve_unavailable_backend_is_clean_error(self, capsys):
        import repro.backend as rb

        if "cupy" in rb.available_backends():  # pragma: no cover - hardware
            pytest.skip("cupy present on this machine")
        with pytest.raises(SystemExit, match="not available"):
            main(["solve", "--feeder", "ieee13", "--backend", "cupy"])

    def test_solve_rejects_unknown_precision(self, capsys):
        with pytest.raises(SystemExit):
            main(["solve", "--precision", "fp16"])

    def test_serve_batch_with_backend_flags(self, capsys):
        rc = main(["serve-batch", "--feeder", "ieee13", "--generate", "4",
                   "--max-batch", "2", "--backend", "numpy32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend: numpy32 (precision mixed, compute float32)" in out
