"""The fidelity ladder: cross-method parity and method-aware serving.

Three contracts live here (docs/METHODS.md):

* **Parity tiers** — each rung, solved at its spec defaults, lands within
  its own tolerance tier against its HiGHS reference, and the measured
  gaps order ``socp <= qp <= linearized`` (higher fidelity, smaller gap).
* **Key compatibility** — ``method`` enters the request digests *only*
  when it is not the default ``linearized``, so every pre-ladder golden
  (routing assignments, topology keys, scenario digests) is unchanged.
* **Cache isolation** — plans and warm starts are keyed per
  ``(topology, method)``: a linearized warm start must never seed a
  conic solve.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core import ADMMConfig
from repro.feeders import ieee13, ieee34
from repro.methods import (
    METHOD_SPECS,
    Method,
    build_method_problem,
    make_method_solver,
    method_report,
    modeled_iteration_times,
    reference_objective,
    solve_reference_socp,
)
from repro.serve import OPFRequest, ScenarioEngine
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def ladder13():
    """The full cross-method validation on IEEE13 at spec defaults."""
    return method_report(ieee13(), metrics=MetricsRegistry())


class TestMethodEnum:
    def test_parse_accepts_values_and_members(self):
        assert Method.parse("socp") is Method.SOCP
        assert Method.parse(Method.QP) is Method.QP
        assert str(Method.LINEARIZED) == "linearized"

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown method"):
            Method.parse("newton-raphson")

    def test_ladder_order_is_fidelity_order(self):
        assert [m.value for m in Method] == ["linearized", "qp", "socp"]

    def test_every_rung_has_a_spec(self):
        for m in Method:
            spec = METHOD_SPECS[m]
            assert spec.method is m
            assert spec.gap_tol > 0
            cfg = spec.default_config()
            assert cfg.eps_rel == spec.eps_rel

    def test_tiers_tighten_with_fidelity(self):
        tols = [METHOD_SPECS[m].gap_tol for m in Method]
        assert tols == sorted(tols, reverse=True)


class TestParityIEEE13:
    def test_every_rung_within_its_tier(self, ladder13):
        assert [r.method for r in ladder13] == ["linearized", "qp", "socp"]
        for r in ladder13:
            assert r.converged, r.method
            assert r.within_tier, f"{r.method}: gap {r.gap:.3e} > {r.gap_tol:g}"

    def test_gap_orders_by_fidelity(self, ladder13):
        gaps = {r.method: r.gap for r in ladder13}
        assert gaps["socp"] <= gaps["qp"] <= gaps["linearized"]

    def test_socp_relaxation_is_near_tight(self, ladder13):
        socp = next(r for r in ladder13 if r.method == "socp")
        assert socp.cone_violation is not None
        assert socp.cone_violation < 1e-4
        for r in ladder13:
            if r.method != "socp":
                assert r.cone_violation is None

    def test_modeled_cost_rises_with_iterations(self, ladder13):
        # Same cost model, same feeder: per-iteration times are comparable,
        # so the modeled solve cost follows the iteration counts.
        by_iters = sorted(ladder13, key=lambda r: r.iterations)
        by_cost = sorted(ladder13, key=lambda r: r.modeled_solve_s)
        assert [r.method for r in by_iters] == [r.method for r in by_cost]
        for r in ladder13:
            assert r.modeled_iteration_s > 0

    def test_report_round_trips_through_json(self, ladder13):
        payload = json.loads(json.dumps([r.to_dict() for r in ladder13]))
        assert [p["method"] for p in payload] == ["linearized", "qp", "socp"]
        assert all(p["within_tier"] for p in payload)


class TestParityIEEE34:
    """The ladder generalizes beyond the feeder its tiers were tuned on."""

    def test_linearized_within_tier_at_tight_eps(self):
        prob = build_method_problem(ieee34(), "linearized")
        ref = reference_objective(prob)
        result = make_method_solver(
            prob, ADMMConfig(rho=100.0, eps_rel=1e-5, max_iter=200_000)
        ).solve()
        assert result.converged
        obj = prob.objective(np.asarray(result.x, dtype=np.float64))
        gap = abs(obj - ref) / abs(ref)
        assert gap <= METHOD_SPECS[Method.LINEARIZED].gap_tol

    def test_socp_within_tier_and_below_linearized(self):
        prob = build_method_problem(ieee34(), "socp")
        ref = reference_objective(prob)
        result = make_method_solver(
            prob, ADMMConfig(rho=100.0, eps_rel=1e-4, max_iter=300_000)
        ).solve()
        assert result.converged
        obj = prob.objective(np.asarray(result.x, dtype=np.float64))
        gap = abs(obj - ref) / abs(ref)
        assert gap <= METHOD_SPECS[Method.SOCP].gap_tol


class TestSOCPReference:
    def test_cutting_planes_feasible_and_below_tolerance(self):
        prob = build_method_problem(ieee13(), "socp")
        ref = solve_reference_socp(prob.conic, tol=1e-6)
        assert prob.conic.cone_violation(ref.x) <= 1e-6 * (1 + 1e-9)
        assert "cutting planes" in ref.status

    def test_reference_objective_dispatches_per_method(self):
        net = ieee13()
        lp_ref = reference_objective(build_method_problem(net, "linearized"))
        socp_ref = reference_objective(build_method_problem(net, "socp"))
        # The SOCP models losses the LP ignores: its optimum costs more.
        assert socp_ref > lp_ref


class TestCostModel:
    def test_socp_sizes_include_cone_blocks(self):
        prob = build_method_problem(ieee13(), "socp")
        sizes = prob.component_sizes
        n_cones = len(prob.conic.cones)
        assert (sizes[-n_cones:] == 4).all()
        assert sizes.sum() == prob.conic_dec.n_local
        times = modeled_iteration_times(prob)
        assert times.total_s > 0


class TestMethodKeys:
    """Digest back-compat: linearized is the default and leaves keys alone."""

    def test_linearized_topology_key_is_the_historical_digest(self):
        key = OPFRequest(request_id="r", feeder="ieee13").topology_key()
        assert key == hashlib.sha256(b"feeder:ieee13").hexdigest()[:16]
        assert key == "54c1e82a6c7547f7"  # pre-ladder pin — never change

    def test_method_field_defaults_to_linearized(self):
        r = OPFRequest(request_id="r")
        assert r.method == "linearized"
        with pytest.raises(ValueError, match="method"):
            OPFRequest(request_id="r", method="sdp")

    def test_methods_get_distinct_topology_keys(self):
        keys = {
            OPFRequest(request_id="r", method=m).topology_key()
            for m in ("linearized", "qp", "socp")
        }
        assert len(keys) == 3

    def test_scenario_key_separates_methods(self):
        kw = dict(request_id="r", load_scale=1.02)
        lin = OPFRequest(**kw)
        qp = OPFRequest(method="qp", **kw)
        assert lin.scenario_key() != qp.scenario_key()

    def test_method_round_trips_through_dict(self):
        r = OPFRequest(request_id="r", method="socp")
        again = OPFRequest.from_dict(r.to_dict())
        assert again.method == "socp"
        assert again.topology_key() == r.topology_key()


class TestServeAcrossMethods:
    @pytest.fixture(scope="class")
    def engine(self):
        eng = ScenarioEngine(max_batch=8)
        reqs = [
            OPFRequest(request_id=f"{m}-{i}", load_scale=1 + 0.01 * i, method=m)
            for m in ("linearized", "qp", "socp")
            for i in range(2)
        ]
        responses = eng.serve(reqs)
        return eng, {r.request_id: r for r in responses}

    def test_mixed_batch_converges_per_method(self, engine):
        _, by_id = engine
        assert all(r.status == "converged" for r in by_id.values())
        # The SOCP objective prices losses: strictly above the LP rungs'.
        assert by_id["socp-0"].objective > by_id["linearized-0"].objective

    def test_one_plan_per_topology_method_pair(self, engine):
        eng, _ = engine
        assert len(eng.plans) == 3
        assert sorted(p.method for p in eng.plans.values()) == [
            "linearized",
            "qp",
            "socp",
        ]

    def test_warm_starts_never_cross_methods(self):
        eng = ScenarioEngine(max_batch=4)
        kw = dict(feeder="ieee13", load_scale=1.02)
        # Prime the cache with a converged linearized solve.
        [lin] = eng.serve([OPFRequest(request_id="lin", **kw)])
        assert lin.status == "converged" and not lin.warm_started
        # The identical perturbation under socp must cold-start: the cache
        # is keyed by (topology, method) and linearized state cannot seed
        # a conic solve.
        [cold] = eng.serve([OPFRequest(request_id="socp-cold", method="socp", **kw)])
        assert cold.status == "converged" and not cold.warm_started
        # ... while a nearby follow-up under the *same* method warm-starts.
        [warm] = eng.serve(
            [
                OPFRequest(
                    request_id="socp-warm",
                    feeder="ieee13",
                    load_scale=1.021,
                    method="socp",
                )
            ]
        )
        assert warm.status == "converged" and warm.warm_started

    def test_batch_metrics_tagged_by_method(self, engine):
        eng, _ = engine
        snap = eng.metrics.registry.snapshot()
        for m in ("linearized", "qp", "socp"):
            assert snap.get(f"methods.batches_{m}", 0) >= 1

    def test_state_export_import_preserves_method(self, engine):
        eng, _ = engine
        state = eng.export_topology_state()
        fresh = ScenarioEngine(max_batch=8)
        fresh.import_topology_state(state)
        assert sorted(p.method for p in fresh.plans.values()) == [
            "linearized",
            "qp",
            "socp",
        ]
        # The re-warmed engine serves a known scenario without re-planning.
        resp = fresh.serve(
            [OPFRequest(request_id="again", load_scale=1.01, method="socp")]
        )
        assert resp[0].status == "converged"
        assert len(fresh.plans) == 3
