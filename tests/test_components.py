"""Unit tests for the component dataclasses."""

import numpy as np
import pytest

from repro.network.components import Bus, Connection, Generator, Line, Load


class TestBus:
    def test_defaults(self):
        bus = Bus("b", (1, 3))
        assert bus.phases == (1, 3)
        assert bus.n_phases == 2
        np.testing.assert_allclose(bus.w_min, [0.81, 0.81])
        np.testing.assert_allclose(bus.w_max, [1.21, 1.21])
        np.testing.assert_allclose(bus.g_sh, 0.0)

    def test_scalar_broadcast(self):
        bus = Bus("b", (1, 2, 3), w_min=0.9, w_max=1.1)
        np.testing.assert_allclose(bus.w_min, 0.9)
        assert bus.w_min.shape == (3,)

    def test_array_shape_validation(self):
        with pytest.raises(ValueError, match="w_min"):
            Bus("b", (1, 2), w_min=np.array([0.9, 0.9, 0.9]))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="w_min exceeds"):
            Bus("b", (1,), w_min=1.2, w_max=0.8)

    def test_phase_normalization(self):
        assert Bus("b", [2, 1]).phases == (1, 2)


class TestGenerator:
    def test_defaults_consistent(self):
        gen = Generator("g", "b", (1, 2, 3))
        assert gen.n_phases == 3
        assert np.all(gen.p_min <= gen.p_max)

    def test_bound_validation(self):
        with pytest.raises(ValueError, match="inconsistent bounds"):
            Generator("g", "b", (1,), p_min=2.0, p_max=1.0)

    def test_per_phase_bounds(self):
        gen = Generator("g", "b", (1, 2), p_max=np.array([0.5, 0.7]))
        np.testing.assert_allclose(gen.p_max, [0.5, 0.7])


class TestLoad:
    def test_wye_bus_phases(self):
        load = Load("l", "b", (1, 3), p_ref=0.1)
        assert load.bus_phases == (1, 3)
        assert not load.is_delta

    def test_delta_branches_and_bus_phases(self):
        load = Load("l", "b", (2,), connection=Connection.DELTA)
        assert load.phases == (2,)
        assert load.bus_phases == (2, 3)
        assert load.branch_phase_pairs == ((2, 3),)

    def test_full_delta(self):
        load = Load("l", "b", (1, 2, 3), connection=Connection.DELTA)
        assert load.bus_phases == (1, 2, 3)
        assert len(load.branch_phase_pairs) == 3

    def test_wye_rejects_branch_pairs_query(self):
        with pytest.raises(ValueError, match="not delta"):
            _ = Load("l", "b", (1,)).branch_phase_pairs

    def test_negative_zip_exponent_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            Load("l", "b", (1,), alpha=-1.0)


class TestLine:
    def test_defaults(self):
        line = Line("ln", "a", "b", (1, 2, 3))
        assert line.n_phases == 3
        assert line.r.shape == (3, 3)
        np.testing.assert_allclose(line.tap, 1.0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="from_bus equals"):
            Line("ln", "a", "a", (1,))

    def test_impedance_shape_validated(self):
        with pytest.raises(ValueError, match="r:"):
            Line("ln", "a", "b", (1, 2), r=np.zeros((3, 3)))

    def test_nonpositive_tap_rejected(self):
        with pytest.raises(ValueError, match="tap"):
            Line("ln", "a", "b", (1,), tap=0.0)

    def test_flow_bound_validation(self):
        with pytest.raises(ValueError, match="flow bounds"):
            Line("ln", "a", "b", (1,), p_min=1.0, p_max=-1.0)
