"""Tests for the feeder library (hand-coded IEEE13 and synthetic feeders)."""

import numpy as np
import pytest

from repro.feeders import (
    SyntheticFeederSpec,
    build_synthetic_feeder,
    ieee13,
    ieee123,
    ieee8500,
)
from repro.network.components import Connection


class TestIEEE13:
    def test_structure(self, ieee13_net):
        assert ieee13_net.n_buses == 14  # 13 named buses + regulator output
        assert ieee13_net.n_lines == 13
        assert ieee13_net.is_radial()
        assert ieee13_net.substation == "650"

    def test_phase_mix(self, ieee13_net):
        assert ieee13_net.buses["611"].phases == (3,)
        assert ieee13_net.buses["652"].phases == (1,)
        assert ieee13_net.buses["645"].phases == (2, 3)
        assert ieee13_net.buses["684"].phases == (1, 3)

    def test_load_connection_mix(self, ieee13_net):
        conns = {l.connection for l in ieee13_net.loads.values()}
        assert conns == {Connection.WYE, Connection.DELTA}
        zips = {float(l.alpha[0]) for l in ieee13_net.loads.values()}
        assert zips == {0.0, 1.0, 2.0}  # PQ, I, Z all present

    def test_full_delta_load_at_671(self, ieee13_net):
        ld = ieee13_net.loads["ld671"]
        assert ld.is_delta and ld.phases == (1, 2, 3)

    def test_regulator_taps(self, ieee13_net):
        reg = ieee13_net.lines["reg_650_rg60"]
        assert reg.is_transformer
        np.testing.assert_allclose(
            reg.tap, [1 / 1.0625**2, 1 / 1.05**2, 1 / 1.0687**2]
        )

    def test_capacitors_modeled_as_shunts(self, ieee13_net):
        assert np.all(ieee13_net.buses["675"].b_sh > 0)
        assert ieee13_net.buses["611"].b_sh[0] > 0

    def test_total_load_magnitude(self, ieee13_net):
        """IEEE13 serves roughly 3.5 MW -> 0.7 pu on the 5 MVA base."""
        assert 0.6 < ieee13_net.total_load_p < 0.8

    def test_flow_limit_parameter(self):
        net = ieee13(flow_limit=3.0)
        line = net.lines["l_632_671"]
        np.testing.assert_allclose(line.p_max, 3.0)


class TestSyntheticGenerator:
    def test_deterministic_given_seed(self):
        spec = SyntheticFeederSpec(n_buses=40, seed=5)
        n1 = build_synthetic_feeder(spec)
        n2 = build_synthetic_feeder(spec)
        assert list(n1.buses) == list(n2.buses)
        assert list(n1.lines) == list(n2.lines)
        for a, b in zip(n1.lines.values(), n2.lines.values()):
            np.testing.assert_array_equal(a.r, b.r)

    def test_different_seeds_differ(self):
        n1 = build_synthetic_feeder(SyntheticFeederSpec(n_buses=40, seed=1))
        n2 = build_synthetic_feeder(SyntheticFeederSpec(n_buses=40, seed=2))
        assert any(
            l1.to_bus != l2.to_bus or not np.array_equal(l1.r, l2.r)
            for l1, l2 in zip(n1.lines.values(), n2.lines.values())
        )

    def test_radial_and_validated(self):
        net = build_synthetic_feeder(SyntheticFeederSpec(n_buses=60, seed=9))
        assert net.is_radial()
        assert net.n_buses == 60
        assert net.n_lines == 59

    def test_child_phases_subset_of_parent(self):
        net = build_synthetic_feeder(SyntheticFeederSpec(n_buses=80, seed=3))
        for line in net.lines.values():
            assert set(line.phases) <= set(net.buses[line.from_bus].phases)
            assert set(line.phases) <= set(net.buses[line.to_bus].phases)

    def test_source_capacity_exceeds_load(self):
        net = build_synthetic_feeder(SyntheticFeederSpec(n_buses=50, seed=4))
        src = net.generators["source"]
        assert float(np.sum(src.p_max)) > net.total_load_p

    def test_der_fraction(self):
        spec = SyntheticFeederSpec(n_buses=80, seed=11, der_fraction=0.5)
        net = build_synthetic_feeder(spec)
        ders = [g for g in net.generators.values() if g.name.startswith("der")]
        assert ders, "expected at least one DER"
        assert all(g.cost == 0.0 for g in ders)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticFeederSpec(n_buses=1)
        with pytest.raises(ValueError):
            SyntheticFeederSpec(depth_bias=1.0)

    def test_lp_feasible(self, small_lp, small_ref):
        """The generator's tuning must keep the linearized model feasible."""
        assert small_ref.objective > 0


class TestInstanceClasses:
    def test_ieee123_scale(self):
        net = ieee123()
        assert net.n_buses == 147
        assert net.is_radial()
        conns = {l.connection for l in net.loads.values()}
        assert Connection.DELTA in conns

    def test_ieee8500_scale_small_subproblems(self):
        """Spot-check a downscaled 8500-style instance: mostly 1-2 phase
        buses (the paper's Table IV signature)."""
        net = ieee8500(n_buses=400)
        hist = net.phase_counts()
        assert hist[1] + hist[2] > hist[3]
