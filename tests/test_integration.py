"""Cross-module integration tests: the full pipeline on multiple feeders,
dynamic topology changes with warm starts, and algorithm cross-validation."""

import numpy as np
import pytest

from repro.core import ADMMConfig, BenchmarkADMM, SolverFreeADMM
from repro.decomposition import decompose
from repro.feeders import SyntheticFeederSpec, build_synthetic_feeder
from repro.formulation import build_centralized_lp
from repro.network import Generator
from repro.reference import solve_reference


def pipeline(net, max_iter=40000, **cfg):
    lp = build_centralized_lp(net)
    dec = decompose(lp)
    res = SolverFreeADMM(dec, ADMMConfig(max_iter=max_iter, **cfg)).solve()
    ref = solve_reference(lp)
    return lp, dec, res, ref


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_synthetic_feeders_converge_to_optimum(self, seed):
        net = build_synthetic_feeder(
            SyntheticFeederSpec(n_buses=30, seed=seed, load_density=0.7)
        )
        lp, dec, res, ref = pipeline(net)
        assert res.converged
        assert ref.compare_objective(res.objective) < 2e-2

    def test_both_algorithms_agree(self, small_dec, small_ref):
        cfg = ADMMConfig(max_iter=40000)
        free = SolverFreeADMM(small_dec, cfg).solve()
        bench = BenchmarkADMM(small_dec, cfg, local_mode="projection").solve()
        assert free.converged and bench.converged
        assert abs(free.objective - bench.objective) < 2e-2 * max(
            abs(small_ref.objective), 1.0
        )

    def test_leaf_merge_ablation_same_optimum(self, ieee13_lp, ieee13_ref):
        dec_plain = decompose(ieee13_lp, merge_leaves=False)
        res = SolverFreeADMM(dec_plain, ADMMConfig(max_iter=30000)).solve()
        assert res.converged
        assert ieee13_ref.compare_objective(res.objective) < 1e-2


class TestDynamicTopology:
    def test_line_removal_and_warm_start(self):
        """The paper's motivating use case: a topology change (leaf spur
        drops off) re-solved with a warm start from the previous solution."""
        net = build_synthetic_feeder(
            SyntheticFeederSpec(n_buses=30, seed=12, load_density=0.7)
        )
        lp1 = build_centralized_lp(net)
        dec1 = decompose(lp1)
        res1 = SolverFreeADMM(dec1, ADMMConfig(max_iter=40000)).solve()
        assert res1.converged

        # Drop a leaf bus and everything attached to it.
        leaf = net.leaf_buses()[0]
        for load in list(net.loads_at(leaf)):
            net.remove_load(load.name)
        for gen in list(net.generators_at(leaf)):
            net.remove_generator(gen.name)
        line = net.lines_at(leaf)[0]
        net.remove_line(line.name)
        del net.buses[leaf]
        net._invalidate()
        net.validate(require_radial=True)

        lp2 = build_centralized_lp(net)
        dec2 = decompose(lp2)
        # Warm start: map surviving variables from the old solution.
        x0 = lp2.initial_point()
        for i, key in enumerate(lp2.var_index.keys):
            if key in lp1.var_index:
                x0[i] = res1.x[lp1.var_index.index(key)]
        cold = SolverFreeADMM(dec2, ADMMConfig(max_iter=60000)).solve()
        warm = SolverFreeADMM(dec2, ADMMConfig(max_iter=60000)).solve(x0=x0)
        assert cold.converged and warm.converged
        assert warm.iterations <= cold.iterations
        ref2 = solve_reference(lp2)
        assert ref2.compare_objective(warm.objective) < 2e-2

    def test_adding_der_lowers_substation_cost(self):
        """Adding a zero-cost DER must reduce the (cost-1) substation
        objective at the optimum."""
        net = build_synthetic_feeder(
            SyntheticFeederSpec(n_buses=30, seed=21, load_density=0.8)
        )
        ref_before = solve_reference(build_centralized_lp(net))
        bus = [b for b in net.buses.values() if b.n_phases == 3][1]
        net.add_generator(
            Generator(
                "pv", bus=bus.name, phases=bus.phases,
                p_min=0.0, p_max=0.05, q_min=-0.05, q_max=0.05, cost=0.0,
            )
        )
        ref_after = solve_reference(build_centralized_lp(net))
        assert ref_after.objective < ref_before.objective


class TestConsensusQuality:
    def test_converged_consensus_is_tight(self, ieee13_solution, ieee13_dec):
        """At convergence, global and local copies agree to the tolerance."""
        bx = ieee13_solution.x[ieee13_dec.global_cols]
        gap = np.abs(bx - ieee13_solution.z)
        assert gap.max() < 1e-2
        assert np.linalg.norm(gap) == pytest.approx(ieee13_solution.pres)

    def test_duals_zero_on_singleton_copies(self, ieee13_solution, ieee13_dec):
        """Variables with a single local copy reach exact consensus quickly;
        their lambdas absorb the full reduced cost but pres contribution is
        dominated by shared variables."""
        counts = ieee13_dec.counts[ieee13_dec.global_cols]
        bx = ieee13_solution.x[ieee13_dec.global_cols]
        singles = counts == 1
        # Consensus gap concentrates on shared copies.
        assert np.abs(bx - ieee13_solution.z)[singles].max() <= (
            np.abs(bx - ieee13_solution.z).max() + 1e-12
        )
