"""Tests for repro.telemetry: tracer, metrics registry, trace summary."""

import json

import numpy as np
import pytest

from repro.telemetry import (
    NULL_TRACER,
    TRACK_CLUSTER,
    TRACK_GPU,
    Counter,
    Gauge,
    MetricsRegistry,
    ReservoirHistogram,
    Tracer,
    format_trace_summary,
    load_trace_events,
    summarize_phases,
)


class TestTracerSpans:
    def test_span_records_event(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        events = tracer.events()
        assert len(events) == 1
        assert events[0].name == "work"
        assert events[0].dur_s >= 0.0
        assert events[0].track == "wall"

    def test_nesting_records_parent_and_ordering(self):
        tracer = Tracer()
        with tracer.span("outer"):
            assert tracer.current_span() == "outer"
            with tracer.span("inner"):
                assert tracer.current_span() == "inner"
        inner, outer = tracer.events()  # inner closes first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.args["parent"] == "outer"
        assert outer.args is None
        # The child is contained in the parent's interval.
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s + 1e-9

    def test_add_complete_uses_caller_stamps(self):
        tracer = Tracer()
        t0 = tracer._t0
        tracer.add_complete("phase", t0 + 1.0, t0 + 1.5, cat="admm")
        (ev,) = tracer.events()
        assert ev.start_s == pytest.approx(1.0)
        assert ev.dur_s == pytest.approx(0.5)
        assert ev.cat == "admm"

    def test_modeled_span_on_named_track(self):
        tracer = Tracer()
        tracer.add_modeled("gpu.kernel.k", 0.25, 0.5, track=TRACK_GPU, args={"blocks": 7})
        (ev,) = tracer.events()
        assert ev.track == TRACK_GPU
        assert ev.start_s == 0.25 and ev.dur_s == 0.5
        assert ev.args == {"blocks": 7}

    def test_disabled_tracer_is_noop_and_falsy(self):
        tracer = Tracer(enabled=False)
        assert not tracer
        with tracer.span("x"):
            pass
        tracer.add_complete("y", 0.0, 1.0)
        tracer.add_modeled("z", 0.0, 1.0)
        assert len(tracer) == 0
        assert tracer.current_span() is None
        assert not NULL_TRACER

    def test_max_events_bound(self):
        tracer = Tracer(max_events=3)
        for i in range(5):
            tracer.add_modeled(f"e{i}", float(i), 1.0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0


class TestChromeExport:
    def test_golden_chrome_trace(self):
        """Deterministic spans produce an exact, Perfetto-loadable doc."""
        tracer = Tracer()
        tracer.add_modeled("kernel", 0.001, 0.002, track=TRACK_GPU, args={"blocks": 2})
        tracer.add_modeled("compute", 0.0, 0.004, track=TRACK_CLUSTER, tid=1)
        doc = tracer.to_chrome_trace()
        assert doc == {
            "traceEvents": [
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 3,
                    "tid": 0,
                    "args": {"name": "cluster-sim"},
                },
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 3,
                    "tid": 1,
                    "args": {"name": "rank 1"},
                },
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 2,
                    "tid": 0,
                    "args": {"name": "gpu-modeled"},
                },
                {
                    "name": "kernel",
                    "ph": "X",
                    "ts": 1000.0,
                    "dur": 2000.0,
                    "pid": 2,
                    "tid": 0,
                    "cat": "modeled",
                    "args": {"blocks": 2},
                },
                {
                    "name": "compute",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": 4000.0,
                    "pid": 3,
                    "tid": 1,
                    "cat": "modeled",
                },
            ],
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": 0},
        }

    def test_save_and_load_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.add_modeled("a", 0.0, 0.5)
        tracer.add_modeled("a", 0.5, 0.25)
        path = tmp_path / "trace.json"
        tracer.save(path)
        events = load_trace_events(path)
        assert [e.name for e in events] == ["a", "a"]
        assert events[0].dur_s == pytest.approx(0.5)
        # The file is valid JSON with a traceEvents array (what Perfetto
        # requires to open it).
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.add_modeled("k", 0.125, 0.0625, track=TRACK_GPU, tid=2, args={"n": 1})
        path = tmp_path / "trace.jsonl"
        tracer.save(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "k"
        (ev,) = load_trace_events(path)
        assert ev.track == TRACK_GPU and ev.tid == 2
        assert ev.start_s == pytest.approx(0.125)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_trace_events(path)
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace_events(path)


class TestSummary:
    def test_per_phase_aggregation(self, tmp_path):
        tracer = Tracer()
        for i in range(4):
            tracer.add_modeled("local", float(i), 0.3, track="wall")
            tracer.add_modeled("global", float(i), 0.1, track="wall")
        tracer.add_modeled("kernel", 0.0, 1.0, track=TRACK_GPU)
        path = tmp_path / "t.json"
        tracer.save(path)
        summaries = summarize_phases(load_trace_events(path))
        by_key = {(s.track, s.name): s for s in summaries}
        local = by_key[("wall", "local")]
        assert local.count == 4
        assert local.total_s == pytest.approx(1.2)
        assert local.mean_s == pytest.approx(0.3)
        assert local.share == pytest.approx(1.2 / 1.6)
        assert by_key[(TRACK_GPU, "kernel")].share == pytest.approx(1.0)
        # Within a track, phases are ordered by descending total time.
        walls = [s for s in summaries if s.track == "wall"]
        assert [s.name for s in walls] == ["local", "global"]

    def test_format_contains_rows(self, tmp_path):
        tracer = Tracer()
        tracer.add_modeled("phase.x", 0.0, 1.0)
        path = tmp_path / "t.json"
        tracer.save(path)
        text = format_trace_summary(load_trace_events(path))
        assert "phase.x" in text and "share %" in text


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("served")
        c.inc()
        c.inc(4)
        assert reg.counter("served").value == 5
        g = reg.gauge("depth")
        g.set(3)
        assert reg.gauge("depth").value == 3.0
        assert isinstance(c, Counter) and isinstance(g, Gauge)

    def test_histogram_exact_under_capacity(self):
        h = ReservoirHistogram("lat", max_samples=100)
        data = [5.0, 1.0, 3.0, 2.0, 4.0]
        for v in data:
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx(3.0)
        assert h.vmin == 1.0 and h.vmax == 5.0
        assert h.percentile(50) == pytest.approx(np.percentile(data, 50))
        assert h.percentile(90) == pytest.approx(np.percentile(data, 90))

    def test_reservoir_bounded_and_accurate(self):
        """Percentiles from a 2k reservoir track np.percentile on 50k draws."""
        rng = np.random.default_rng(42)
        data = rng.lognormal(mean=0.0, sigma=1.0, size=50_000)
        h = ReservoirHistogram("lat", max_samples=2048, seed=0)
        for v in data:
            h.observe(v)
        assert len(h) == 2048  # memory bound holds
        assert h.count == 50_000
        assert h.mean == pytest.approx(float(np.mean(data)))  # exact
        for q in (50, 90, 99):
            exact = float(np.percentile(data, q))
            approx = h.percentile(q)
            assert abs(approx - exact) / exact < 0.15, (q, exact, approx)

    def test_add_aggregate_matches_phase_timer_semantics(self):
        h = ReservoirHistogram("t")
        h.add_aggregate(1.5)
        h.add_aggregate(0.5, count=2)
        assert h.count == 3
        assert h.total == pytest.approx(2.0)
        with pytest.raises(ValueError):
            h.add_aggregate(1.0, count=0)

    def test_empty_histogram(self):
        h = ReservoirHistogram("x")
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert h.summary()["min"] == 0.0

    def test_registry_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1.5)
        h = reg.histogram("c")
        h.observe(10.0)
        snap = reg.snapshot()
        assert snap["a"] == 2
        assert snap["b"] == 1.5
        assert snap["c_count"] == 1
        assert snap["c_mean"] == 10.0


class TestInstrumentationIntegration:
    def test_solver_free_emits_phase_spans(self, ieee13_dec):
        from repro.core import ADMMConfig, SolverFreeADMM

        tracer = Tracer()
        cfg = ADMMConfig(max_iter=10, raise_on_max_iter=False)
        SolverFreeADMM(ieee13_dec, cfg, tracer=tracer).solve()
        names = {e.name for e in tracer.events()}
        assert {"admm.solve", "admm.global", "admm.local", "admm.dual", "admm.residual"} <= names
        # Exactly 4 phase spans per iteration plus the root span.
        assert len(tracer) == 4 * 10 + 1

    def test_solver_free_untraced_has_no_tracer_state(self, ieee13_dec):
        from repro.core import SolverFreeADMM

        solver = SolverFreeADMM(ieee13_dec)
        assert not solver.tracer
        assert solver.solve(max_iter=5).iterations == 5

    def test_runner_emits_rank_spans(self, ieee13_dec):
        from repro.parallel import CPU_CLUSTER_COMM
        from repro.parallel.runner import DistributedADMMRunner

        tracer = Tracer()
        runner = DistributedADMMRunner(ieee13_dec, 4, CPU_CLUSTER_COMM, tracer=tracer)
        runner.solve(max_iter=3)
        cluster = [e for e in tracer.events() if e.track == TRACK_CLUSTER]
        names = {e.name for e in cluster}
        assert {"rank.global_update", "rank.local_update", "comm.scatter", "comm.gather"} <= names
        # Every rank contributed compute spans.
        assert {e.tid for e in cluster if e.name == "rank.local_update"} == set(range(4))

    def test_kernel_sim_emits_modeled_span(self):
        from repro.gpu.device import A100
        from repro.gpu.kernel_sim import simulate_local_update

        tracer = Tracer()
        execution = simulate_local_update(
            A100, np.array([4.0, 9.0, 16.0]), 32, tracer=tracer, t_start_s=1.0
        )
        (ev,) = tracer.events()
        assert ev.name == "gpu.kernel.local_update"
        assert ev.track == TRACK_GPU
        assert ev.start_s == pytest.approx(1.0)
        assert ev.dur_s == pytest.approx(execution.time_s)
        assert ev.args["blocks"] == 3
