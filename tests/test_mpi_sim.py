"""Tests for the simulated MPI communicator and the distributed runner."""

import numpy as np
import pytest

from repro.core import ADMMConfig, SolverFreeADMM
from repro.parallel import (
    CPU_CLUSTER_COMM,
    GPU_CLUSTER_COMM,
    CommModel,
    DistributedADMMRunner,
    SimComm,
)


class TestSimComm:
    def make(self, size=3):
        return SimComm(size, CommModel(latency_s=1e-6, bandwidth_bytes_s=8e9))

    def test_initial_clocks_zero(self):
        comm = self.make()
        assert comm.elapsed() == 0.0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimComm(0, CPU_CLUSTER_COMM)

    def test_advance_and_barrier(self):
        comm = self.make()
        comm.advance(1, 5e-3)
        assert comm.elapsed() == pytest.approx(5e-3)
        comm.barrier()
        np.testing.assert_allclose(comm.clocks, 5e-3)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            self.make().advance(0, -1.0)

    def test_scatterv_delivers_data(self):
        comm = self.make()
        parts = [np.full(4, float(r)) for r in range(3)]
        out = comm.scatterv(0, parts)
        for r in range(3):
            np.testing.assert_array_equal(out[r], parts[r])

    def test_scatterv_serializes_at_root(self):
        """Root endpoint busy for each message: its clock accumulates the
        per-message time times (size - 1)."""
        comm = self.make()
        msg = comm.comm_model.message_time(4 * 8)
        comm.scatterv(0, [np.zeros(4) for _ in range(3)])
        assert comm.clocks[0] == pytest.approx(2 * msg)
        # Last receiver finishes after both sends.
        assert comm.clocks[2] == pytest.approx(2 * msg)

    def test_scatterv_needs_all_parts(self):
        with pytest.raises(ValueError, match="one part per rank"):
            self.make().scatterv(0, [np.zeros(1)])

    def test_gatherv_roundtrip(self):
        comm = self.make()
        part = {r: np.full(2, float(r)) for r in range(3)}
        out = comm.gatherv(0, part)
        for r in range(3):
            np.testing.assert_array_equal(out[r], part[r])
        assert comm.clocks[0] > 0

    def test_gatherv_validates_keys(self):
        with pytest.raises(ValueError, match="one part per rank"):
            self.make().gatherv(0, {0: np.zeros(1)})

    def test_bcast(self):
        comm = self.make()
        value = np.arange(5.0)
        out = comm.bcast(0, value)
        for r in range(3):
            np.testing.assert_array_equal(out[r], value)
        # Non-root copies are independent buffers.
        out[1][0] = 99.0
        assert value[0] == 0.0

    def test_gpu_staging_costs_more(self):
        cpu = SimComm(2, CPU_CLUSTER_COMM)
        gpu = SimComm(2, GPU_CLUSTER_COMM)
        cpu.bcast(0, np.zeros(1000))
        gpu.bcast(0, np.zeros(1000))
        assert gpu.elapsed() > cpu.elapsed()

    def test_determinism(self):
        c1, c2 = self.make(), self.make()
        for c in (c1, c2):
            c.scatterv(0, [np.zeros(3)] * 3)
            c.gatherv(0, {r: np.zeros(2) for r in range(3)})
        np.testing.assert_array_equal(c1.clocks, c2.clocks)


class _StubInjector:
    """Minimal message_fault hook (drop/delay lists of (src, dst))."""

    def __init__(self, drops=(), delays=(), delay_s=1e-3):
        self.drops = set(drops)
        self.delays = set(delays)
        self.delay_s = delay_s

    def message_fault(self, src, dst):
        return (src, dst) in self.drops, (
            self.delay_s if (src, dst) in self.delays else 0.0
        )


class TestSimCommEdgeCases:
    def make(self, size=3, injector=None):
        comm = SimComm(size, CommModel(latency_s=1e-6, bandwidth_bytes_s=8e9))
        comm.injector = injector
        return comm

    def test_zero_byte_parts_still_pay_latency(self):
        """Empty messages move no bytes but each one still costs alpha."""
        comm = self.make()
        out = comm.scatterv(0, [np.zeros(0) for _ in range(3)])
        for r in range(3):
            assert out[r].size == 0
        assert comm.clocks[0] == pytest.approx(2 * comm.comm_model.latency_s)
        comm.gatherv(0, {r: np.zeros(0) for r in range(3)})
        assert comm.clocks[0] == pytest.approx(4 * comm.comm_model.latency_s)

    def test_single_rank_collectives_are_free(self):
        comm = self.make(size=1)
        value = np.arange(3.0)
        np.testing.assert_array_equal(comm.scatterv(0, [value])[0], value)
        np.testing.assert_array_equal(comm.gatherv(0, {0: value})[0], value)
        np.testing.assert_array_equal(comm.bcast(0, value)[0], value)
        comm.barrier()
        assert comm.elapsed() == 0.0

    def test_clocks_monotone_under_out_of_order_advance(self):
        """However compute time is charged across ranks, no operation ever
        moves a clock backwards."""
        comm = self.make(4)
        rng = np.random.default_rng(0)
        before = comm.clocks.copy()
        for _ in range(50):
            op = rng.integers(0, 4)
            if op == 0:
                comm.advance(int(rng.integers(0, 4)), float(rng.uniform(0, 1e-3)))
            elif op == 1:
                comm.scatterv(0, [np.zeros(int(rng.integers(0, 8))) for _ in range(4)])
            elif op == 2:
                comm.gatherv(0, {r: np.zeros(2) for r in range(4)})
            else:
                comm.barrier(sorted(rng.choice(4, size=2, replace=False).tolist()))
            assert (comm.clocks >= before).all()
            before = comm.clocks.copy()

    def test_scatterv_none_part_skips_rank(self):
        comm = self.make()
        out = comm.scatterv(0, [np.zeros(4), None, np.ones(4)])
        assert out[1] is None
        np.testing.assert_array_equal(out[2], np.ones(4))
        # Only one message left the root.
        assert comm.clocks[0] == pytest.approx(comm.comm_model.message_time(32))
        assert comm.clocks[1] == 0.0

    def test_gatherv_partial_subset(self):
        comm = self.make()
        out = comm.gatherv(0, {0: np.zeros(2), 2: np.ones(2)}, partial=True)
        assert out[1] is None
        np.testing.assert_array_equal(out[2], np.ones(2))
        with pytest.raises(ValueError, match="unknown ranks"):
            comm.gatherv(0, {5: np.zeros(1)}, partial=True)

    def test_subset_barrier_leaves_others_alone(self):
        comm = self.make()
        comm.advance(2, 1.0)
        comm.barrier([0, 2])
        assert comm.clocks[0] == pytest.approx(1.0)
        assert comm.clocks[1] == 0.0
        comm.barrier([])  # no-op, not an error
        assert comm.clocks[1] == 0.0

    def test_injected_drop_loses_data_but_charges_wire_time(self):
        comm = self.make(injector=_StubInjector(drops=[(0, 1)]))
        out = comm.scatterv(0, [np.zeros(4), np.ones(4), np.full(4, 2.0)])
        assert out[1] is None  # the network lost it
        np.testing.assert_array_equal(out[2], np.full(4, 2.0))
        # The bytes still left the root: both sends occupy its endpoint.
        assert comm.clocks[0] == pytest.approx(2 * comm.comm_model.message_time(32))

    def test_injected_delay_slows_both_endpoints(self):
        clean = self.make()
        slow = self.make(injector=_StubInjector(delays=[(1, 0)], delay_s=2e-3))
        part = {r: np.zeros(4) for r in range(3)}
        clean.gatherv(0, dict(part))
        slow.gatherv(0, dict(part))
        assert slow.clocks[0] == pytest.approx(clean.clocks[0] + 2e-3)
        assert slow.clocks[1] == pytest.approx(clean.clocks[1] + 2e-3)


class TestDistributedRunner:
    def test_parity_with_serial(self, ieee13_dec):
        cfg = ADMMConfig(max_iter=300)
        # The runner pins numpy64 internally; pin the serial reference too so
        # the bit-level comparison is unaffected by $REPRO_BACKEND.
        serial = SolverFreeADMM(ieee13_dec, cfg, backend="numpy64").solve()
        run = DistributedADMMRunner(ieee13_dec, 4, CPU_CLUSTER_COMM, cfg).solve()
        np.testing.assert_allclose(run.result.x, serial.x, atol=1e-12)
        np.testing.assert_allclose(run.result.z, serial.z, atol=1e-12)
        np.testing.assert_allclose(run.result.lam, serial.lam, atol=1e-9)
        assert run.result.iterations == serial.iterations

    def test_parity_across_rank_counts(self, small_dec):
        cfg = ADMMConfig(max_iter=100)
        runs = [
            DistributedADMMRunner(small_dec, n, CPU_CLUSTER_COMM, cfg).solve()
            for n in (1, 2, 5)
        ]
        for run in runs[1:]:
            np.testing.assert_allclose(run.result.x, runs[0].result.x, atol=1e-12)

    def test_converges_and_reports_timeline(self, small_dec, small_ref):
        run = DistributedADMMRunner(
            small_dec, 3, CPU_CLUSTER_COMM, ADMMConfig(max_iter=40000)
        ).solve()
        assert run.result.converged
        assert small_ref.compare_objective(run.result.objective) < 2e-2
        assert len(run.timeline.total_s) == run.result.iterations
        assert run.simulated_total_s == pytest.approx(sum(run.timeline.total_s), rel=1e-6)
        assert run.timeline.mean_comm_s > 0

    def test_more_ranks_more_comm(self, ieee13_dec):
        """With a latency-dominated link the aggregator's serialized
        endpoint makes per-iteration comm grow with rank count (Fig. 1c);
        the slow link drowns out measurement jitter."""
        cfg = ADMMConfig(max_iter=50)
        slow = CommModel(latency_s=1e-4, bandwidth_bytes_s=1e9)
        r2 = DistributedADMMRunner(ieee13_dec, 2, slow, cfg).solve()
        r8 = DistributedADMMRunner(ieee13_dec, 8, slow, cfg).solve()
        assert r8.timeline.mean_comm_s > r2.timeline.mean_comm_s

    def test_rejects_extensions(self, small_dec):
        with pytest.raises(ValueError, match="plain Algorithm 1"):
            DistributedADMMRunner(
                small_dec, 2, CPU_CLUSTER_COMM, ADMMConfig(relaxation=1.5)
            )
        with pytest.raises(ValueError, match="plain Algorithm 1"):
            DistributedADMMRunner(
                small_dec, 2, CPU_CLUSTER_COMM, ADMMConfig(residual_balancing=True)
            )
