"""repro.backend: registry, precision policies, fp32/fp64 equivalence and
the mixed-precision refinement fallback."""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV_VAR,
    Backend,
    CupyBackend,
    NumpyBackend,
    available_backends,
    backend_names,
    default_backend,
    get_backend,
    policy_for,
    refinement_backend,
    resolve_backend,
)
from repro.core.config import ADMMConfig
from repro.core.solver_free import SolverFreeADMM
from repro.decomposition import decompose
from repro.feeders import SyntheticFeederSpec, build_synthetic_feeder, ieee13
from repro.formulation import build_centralized_lp


@pytest.fixture(scope="module")
def dec13():
    return decompose(build_centralized_lp(ieee13()))


@pytest.fixture(scope="module")
def dec_synth():
    net = build_synthetic_feeder(SyntheticFeederSpec(n_buses=40, seed=7))
    return decompose(build_centralized_lp(net))


class TestRegistry:
    def test_names(self):
        assert set(backend_names()) == {"numpy64", "numpy32", "cupy"}

    def test_numpy_backends_always_available(self):
        assert "numpy64" in available_backends()
        assert "numpy32" in available_backends()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("tpu")

    def test_cupy_detected_or_skips_cleanly(self):
        """On CUDA machines the cupy backend resolves; everywhere else the
        registry reports it unavailable with a clean error (never an
        ImportError at module import time)."""
        if "cupy" in available_backends():  # pragma: no cover - hardware
            assert get_backend("cupy").device
        else:
            with pytest.raises(ValueError, match="not available"):
                get_backend("cupy")

    def test_instances_cached(self):
        assert get_backend("numpy64") is get_backend("numpy64")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy32")
        assert default_backend().name == "numpy32"
        assert resolve_backend(None).name == "numpy32"
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert default_backend().name == "numpy64"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy32")
        assert resolve_backend("numpy64").name == "numpy64"
        instance = get_backend("numpy64")
        assert resolve_backend(instance) is instance

    def test_precision_overlay(self):
        b = resolve_backend("numpy64", precision="fp32")
        assert isinstance(b, NumpyBackend)
        assert b.compute_dtype == np.float32
        assert not b.policy.refine
        # Overlay matching the existing policy returns the same instance.
        assert resolve_backend("numpy64", precision="fp64") is get_backend("numpy64")

    def test_policy_lookup(self):
        assert policy_for("mixed").refine
        with pytest.raises(ValueError, match="unknown precision"):
            policy_for("fp16")

    def test_refinement_backend_is_fp64(self):
        assert refinement_backend(get_backend("numpy32")).compute_dtype == np.float64

    def test_capabilities(self):
        caps = get_backend("numpy32").capabilities()
        assert caps["compute_dtype"] == "float32"
        assert caps["accumulate_dtype"] == "float64"
        assert caps["refinement"] is True
        assert caps["itemsize"] == 4


class TestPrimitives:
    def test_scatter_add_accumulates_fp64(self):
        b = get_backend("numpy32")
        idx = b.index_array([0, 0, 1])
        out = b.scatter_add(idx, b.asarray([1.0, 2.0, 3.0]), 3)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, [3.0, 3.0, 0.0])

    def test_matmul_batched_matches_loop(self):
        b = get_backend("numpy64")
        rng = np.random.default_rng(0)
        proj = rng.standard_normal((3, 4, 4))
        v = rng.standard_normal((3, 4))
        out = b.matmul_batched(b.asarray(proj), b.asarray(v.ravel()))
        np.testing.assert_allclose(out.reshape(3, 4), np.einsum("sij,sj->si", proj, v))

    def test_norm_and_dot_accumulate_fp64(self):
        b = get_backend("numpy32")
        v = b.asarray(np.ones(10))
        assert isinstance(b.norm(v), float)
        assert b.dot(v, v) == pytest.approx(10.0)

    def test_to_numpy_is_fp64(self):
        b = get_backend("numpy32")
        out = b.to_numpy(b.zeros(4))
        assert out.dtype == np.float64


class TestEquivalence:
    """fp32 and fp64 solve the same problems to the same answers."""

    def test_ieee13_objective_agrees(self, dec13):
        r64 = SolverFreeADMM(dec13, backend="numpy64").solve()
        r32 = SolverFreeADMM(dec13, backend="numpy32").solve()
        assert r64.converged and r32.converged
        rel = abs(r32.objective - r64.objective) / abs(r64.objective)
        assert rel < 1e-4

    def test_synthetic_feeder_objective_agrees(self, dec_synth):
        r64 = SolverFreeADMM(dec_synth, backend="numpy64").solve()
        r32 = SolverFreeADMM(dec_synth, backend="numpy32").solve()
        assert r64.converged and r32.converged
        rel = abs(r32.objective - r64.objective) / abs(max(r64.objective, 1e-12))
        assert rel < 1e-4

    def test_pure_fp32_converges_without_refinement(self, dec13):
        result = SolverFreeADMM(dec13, backend="numpy32", precision="fp32").solve()
        assert result.converged
        assert "refinement" not in result.algorithm

    def test_default_backend_result_dtype_is_fp64(self, dec13):
        """Results always come back as host fp64 regardless of backend."""
        result = SolverFreeADMM(dec13, backend="numpy32").solve()
        assert result.x.dtype == np.float64
        assert result.z.dtype == np.float64


class TestRefinementFallback:
    def test_triggers_on_tolerance_beyond_fp32(self, dec13):
        """eps_rel = 1e-6 sits below the fp32 round-off floor of this
        problem — the deliberately ill-conditioned case: fp32 stalls above
        tolerance and the fp64 continuation finishes the solve."""
        cfg = ADMMConfig(eps_rel=1e-6, max_iter=60_000)
        result = SolverFreeADMM(dec13, cfg, backend="numpy32").solve()
        assert result.converged
        assert "refinement" in result.algorithm
        # The merged result keeps one continuous history.
        assert len(result.history.pres) == result.iterations

    def test_not_triggered_at_paper_tolerance(self, dec13):
        result = SolverFreeADMM(dec13, backend="numpy32").solve()
        assert result.converged
        assert "refinement" not in result.algorithm

    def test_matches_fp64_solution(self, dec13):
        cfg = ADMMConfig(eps_rel=1e-6, max_iter=60_000)
        r32 = SolverFreeADMM(dec13, cfg, backend="numpy32").solve()
        r64 = SolverFreeADMM(dec13, cfg, backend="numpy64").solve()
        rel = abs(r32.objective - r64.objective) / abs(r64.objective)
        assert rel < 1e-6


class TestBitIdentity:
    """numpy64 is the historical implementation, not merely close to it."""

    def test_numpy64_trajectory_is_deterministic(self, dec13):
        a = SolverFreeADMM(dec13, backend="numpy64").solve()
        b = SolverFreeADMM(dec13, backend="numpy64").solve()
        assert np.array_equal(a.x, b.x)
        assert a.history.pres == b.history.pres

    def test_numpy64_asarray_never_copies_fp64(self):
        b = get_backend("numpy64")
        v = np.zeros(5)
        assert b.asarray(v) is v
