"""Routing determinism: the consistent-hash ring must assign identically
across runs, platforms and processes (no ``PYTHONHASHSEED`` dependence).

The fleet's failover-equivalence guarantee starts here — if routing
drifted between two runs, "same request stream, same worker count" would
not produce the same per-worker serving history, and the scaling
benchmark's balanced shard sets would silently unbalance.
"""

import subprocess
import sys

import pytest

from repro.fleet import DEFAULT_REPLICAS, HashRing, stable_hash
from repro.serve import OPFRequest

WORKERS4 = ["w0", "w1", "w2", "w3"]

#: Pinned golden assignments.  These values are a *contract*: they were
#: produced by sha256-based hashing and must never change — a diff here
#: means every deployed fleet's cache affinity would reshuffle on upgrade.
GOLDEN_HASHES = {
    "ieee13": 16322283722255867167,
    "w0#0": 9018950092206426412,
    "": 16406829232824261652,
}
GOLDEN_ROUTES4 = {
    "feeder:ieee13": "w3",
    "feeder:synthetic:20:0": "w0",
    "feeder:synthetic:20:1": "w0",
    "feeder:synthetic:20:4": "w3",
}


class TestStableHash:
    def test_pinned_values(self):
        for key, expected in GOLDEN_HASHES.items():
            assert stable_hash(key) == expected

    def test_no_pythonhashseed_dependence(self):
        """The same keys hash identically in subprocesses launched with
        different (and disabled) hash randomization seeds."""
        keys = ["feeder:ieee13", "feeder:synthetic:20:0", "w0#17", ""]
        script = (
            "from repro.fleet import HashRing, stable_hash\n"
            f"keys = {keys!r}\n"
            f"ring = HashRing({WORKERS4!r})\n"
            "print([stable_hash(k) for k in keys])\n"
            "print([ring.route(k) for k in keys])\n"
        )
        outputs = set()
        for seed in ("0", "1", "31337", "random"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1

    def test_pinned_ring_routes(self):
        ring = HashRing(WORKERS4)
        for key, worker in GOLDEN_ROUTES4.items():
            assert ring.route(key) == worker


class TestHashRing:
    def test_membership_order_is_irrelevant(self):
        a = HashRing(["w2", "w0", "w1"])
        b = HashRing(["w0", "w1", "w2"])
        keys = [f"k{i}" for i in range(200)]
        assert a.assignment(keys) == b.assignment(keys)

    def test_assignment_repeats_identically(self):
        keys = [f"feeder:{i}" for i in range(500)]
        assignments = {
            tuple(sorted(HashRing(WORKERS4).assignment(keys).items()))
            for _ in range(3)
        }
        assert len(assignments) == 1

    def test_preference_starts_at_route_and_covers_everyone(self):
        ring = HashRing(WORKERS4)
        for i in range(50):
            pref = ring.preference(f"k{i}")
            assert pref[0] == ring.route(f"k{i}")
            assert sorted(pref) == sorted(WORKERS4)

    def test_removal_moves_only_the_dead_workers_keys(self):
        """The consistent-hashing contract: removing w2 re-routes w2's
        keys (to their next preference) and nothing else."""
        ring = HashRing(WORKERS4)
        keys = [f"k{i}" for i in range(300)]
        before = ring.assignment(keys)
        pref_before = {k: ring.preference(k) for k in keys}
        ring.remove("w2")
        after = ring.assignment(keys)
        moved = {k for k in keys if before[k] != after[k]}
        assert moved == {k for k in keys if before[k] == "w2"}
        for k in moved:
            # ... and they land on their pre-computed next preference.
            assert after[k] == [w for w in pref_before[k] if w != "w2"][0]

    def test_add_is_inverse_of_remove(self):
        ring = HashRing(WORKERS4)
        keys = [f"k{i}" for i in range(100)]
        before = ring.assignment(keys)
        ring.remove("w1")
        ring.add("w1")
        assert ring.assignment(keys) == before

    def test_replicas_smooth_the_balance(self):
        keys = [f"k{i}" for i in range(2000)]
        ring = HashRing(WORKERS4, replicas=DEFAULT_REPLICAS)
        counts = {w: 0 for w in WORKERS4}
        for k in keys:
            counts[ring.route(k)] += 1
        # With 64 replicas each of 4 workers should hold a sane share —
        # the bound is loose (hashing is random-like) but rules out the
        # pathological single-replica imbalances.
        assert min(counts.values()) > len(keys) * 0.10
        assert max(counts.values()) < len(keys) * 0.45

    def test_guards(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["w0"], replicas=0)
        ring = HashRing(["w0"])
        with pytest.raises(ValueError):
            ring.remove("w0")
        with pytest.raises(KeyError):
            HashRing(WORKERS4).remove("nope")

    def test_duplicate_add_is_idempotent(self):
        ring = HashRing(WORKERS4)
        keys = [f"k{i}" for i in range(100)]
        before = ring.assignment(keys)
        ring.add("w0")
        assert ring.assignment(keys) == before
        assert len(ring) == 4


class TestTopologyAffinity:
    def test_same_feeder_always_routes_to_one_worker(self):
        ring = HashRing(WORKERS4)
        reqs = [
            OPFRequest(request_id=f"s{i}", feeder="ieee13", load_scale=1 + 0.01 * i)
            for i in range(20)
        ]
        owners = {ring.route(r.topology_key()) for r in reqs}
        assert len(owners) == 1
