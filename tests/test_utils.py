"""Tests for utilities (timers, tables, exceptions)."""

import time

import pytest

from repro.utils import (
    ConvergenceError,
    DecompositionError,
    FormulationError,
    InfeasibleError,
    NetworkValidationError,
    PhaseTimer,
    QPSolverError,
    ReproError,
    Timer,
    format_table,
)


class TestExceptions:
    def test_hierarchy(self):
        for exc in (
            NetworkValidationError,
            FormulationError,
            DecompositionError,
            ConvergenceError,
            InfeasibleError,
            QPSolverError,
        ):
            assert issubclass(exc, ReproError)
            with pytest.raises(ReproError):
                raise exc("boom")


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        first = t.elapsed
        with t:
            time.sleep(0.002)
        assert t.elapsed > first > 0

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestPhaseTimer:
    def test_measure_and_totals(self):
        pt = PhaseTimer()
        with pt.measure("a"):
            time.sleep(0.002)
        with pt.measure("a"):
            pass
        assert pt.counts["a"] == 2
        assert pt.total("a") > 0
        assert pt.mean("a") == pytest.approx(pt.total("a") / 2)

    def test_add_simulated_time(self):
        pt = PhaseTimer()
        pt.add("comm", 1.5)
        pt.add("comm", 0.5, count=2)
        assert pt.total("comm") == 2.0
        assert pt.counts["comm"] == 3
        assert pt.grand_total() == 2.0

    def test_missing_phase_zero(self):
        pt = PhaseTimer()
        assert pt.total("nope") == 0.0
        assert pt.mean("nope") == 0.0

    def test_reset_and_as_dict(self):
        pt = PhaseTimer()
        pt.add("x", 1.0)
        assert pt.as_dict() == {"x": 1.0}
        pt.reset()
        assert pt.as_dict() == {}


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.0], ["bb", 123456.0]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_numeric_formatting(self):
        text = format_table(["v"], [[0.000123456], [0.0], [12]])
        assert "1.235e-04" in text
        assert "0" in text
        assert "12" in text
