"""Hardened-serving tests: divergence retry/degrade, circuit breaker,
deadlines, and structured backpressure (docs/RESILIENCE.md)."""

import time

import numpy as np
import pytest

from repro.reference import solve_reference
from repro.resilience import (
    ANY_TARGET,
    FaultPlan,
    NaNCorruption,
    ResilienceConfig,
    RetryPolicy,
)
from repro.serve import (
    STATUS_CONVERGED,
    STATUS_ERROR,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    BoundedRequestQueue,
    OPFRequest,
    QueueFullError,
    ScenarioEngine,
    SolveOptions,
)


def reqs(*scales, **kw):
    return [
        OPFRequest(request_id=f"s{i}", load_scale=s, **kw)
        for i, s in enumerate(scales)
    ]


class TestRetryIsolation:
    def test_corrupted_scenario_retries_clean_without_poisoning_batchmates(self):
        """A NaN-corrupted scenario is retried alone and converges; its
        batch-mates' objectives are bit-identical to a fault-free run."""
        plan = FaultPlan(
            seed=3, faults=(NaNCorruption(target="s1", at_iteration=5, attempt=0),)
        )
        chaos = ScenarioEngine(max_batch=4, fault_plan=plan)
        clean = ScenarioEngine(max_batch=4)
        chaos_resp = {r.request_id: r for r in chaos.serve(reqs(1.0, 1.03, 1.06))}
        clean_resp = {r.request_id: r for r in clean.serve(reqs(1.0, 1.03, 1.06))}

        poisoned = chaos_resp["s1"]
        assert poisoned.status == STATUS_CONVERGED
        assert poisoned.attempts == 2  # one clean retry after the corruption
        assert not poisoned.degraded
        for rid in ("s0", "s2"):  # batch-mates: untouched, exactly equal
            assert chaos_resp[rid].status == STATUS_CONVERGED
            assert chaos_resp[rid].objective == clean_resp[rid].objective
            assert chaos_resp[rid].iterations == clean_resp[rid].iterations
            assert chaos_resp[rid].attempts == 1

        snap = chaos.snapshot()
        assert snap["divergent"] == 1
        assert snap["retries"] == 1
        assert snap["degraded"] == 0
        assert chaos.injector.injected == 1

    def test_retry_counter_matches_policy(self):
        """Corruption on attempts 0 and 1 costs two retries before the
        attempt-2 solve runs clean."""
        plan = FaultPlan(
            faults=(
                NaNCorruption(target="s0", at_iteration=1, attempt=0),
                NaNCorruption(target="s0", at_iteration=1, attempt=1),
            )
        )
        engine = ScenarioEngine(
            max_batch=2,
            fault_plan=plan,
            resilience=ResilienceConfig(retry=RetryPolicy(max_retries=2)),
        )
        resp = engine.serve(reqs(1.0))[0]
        assert resp.status == STATUS_CONVERGED
        assert resp.attempts == 3
        assert engine.metrics.retries == 2


class TestGracefulDegradation:
    def make_engine(self, max_retries=1, degrade=True, threshold=5):
        # Corrupt every attempt at iteration 1: retries can never succeed.
        plan = FaultPlan(
            faults=tuple(
                NaNCorruption(target="s0", at_iteration=1, attempt=a)
                for a in range(max_retries + 1)
            )
        )
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_retries=max_retries),
            degrade_to_reference=degrade,
            breaker_failure_threshold=threshold,
        )
        return ScenarioEngine(max_batch=2, fault_plan=plan, resilience=cfg)

    def test_exhausted_retries_degrade_to_reference(self):
        engine = self.make_engine()
        resp = engine.serve(reqs(1.04))[0]
        assert resp.status == STATUS_CONVERGED
        assert resp.degraded
        assert resp.iterations == 0  # no ADMM iterations: reference LP
        assert resp.attempts == 2  # the first solve plus one doomed retry
        plan = next(iter(engine.plans.values()))
        req = OPFRequest(request_id="s0", load_scale=1.04)
        ref = solve_reference(plan.build_scenario(req).lp)
        assert resp.objective == pytest.approx(ref.objective, abs=1e-9)
        snap = engine.snapshot()
        assert snap["degraded"] == 1
        assert snap["converged"] == 1

    def test_degradation_disabled_errors_out(self):
        engine = self.make_engine(degrade=False)
        resp = engine.serve(reqs(1.0))[0]
        assert resp.status == STATUS_ERROR
        assert "diverged" in resp.error
        assert engine.metrics.degraded == 0
        assert engine.metrics.errors == 1

    def test_socp_scenario_degrades_to_cutting_plane_reference(self):
        """A conic scenario has no LP to fall back to; exhausted retries
        must degrade to the HiGHS cutting-plane SOCP solve of the same
        model (not error out, which was the pre-ladder behavior)."""
        from repro.methods.reference import solve_reference_socp

        plan_faults = FaultPlan(
            faults=tuple(
                NaNCorruption(target="s0", at_iteration=1, attempt=a)
                for a in range(2)
            )
        )
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_retries=1), degrade_to_reference=True
        )
        engine = ScenarioEngine(
            max_batch=2, fault_plan=plan_faults, resilience=cfg
        )
        resp = engine.serve(reqs(1.04, method="socp"))[0]
        assert resp.status == STATUS_CONVERGED
        assert resp.degraded
        assert resp.iterations == 0
        assert resp.attempts == 2
        plan = next(iter(engine.plans.values()))
        scenario = plan.build_scenario(
            OPFRequest(request_id="s0", load_scale=1.04, method="socp")
        )
        assert scenario.lp is None and scenario.conic is not None
        ref = solve_reference_socp(scenario.conic)
        assert resp.objective == pytest.approx(ref.objective, rel=1e-6)
        assert engine.snapshot()["degraded"] == 1

    def test_socp_degradation_disabled_still_errors(self):
        plan_faults = FaultPlan(
            faults=tuple(
                NaNCorruption(target="s0", at_iteration=1, attempt=a)
                for a in range(2)
            )
        )
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_retries=1), degrade_to_reference=False
        )
        engine = ScenarioEngine(
            max_batch=2, fault_plan=plan_faults, resilience=cfg
        )
        resp = engine.serve(reqs(1.0, method="socp"))[0]
        assert resp.status == STATUS_ERROR
        assert "diverged" in resp.error


class TestCircuitBreaker:
    def test_breaker_opens_and_fast_rejects(self):
        plan = FaultPlan(
            faults=tuple(
                NaNCorruption(target=ANY_TARGET, at_iteration=1, attempt=a)
                for a in range(2)
            )
        )
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_retries=1),
            degrade_to_reference=False,
            breaker_failure_threshold=1,
            breaker_recovery_s=1000.0,
        )
        engine = ScenarioEngine(max_batch=2, fault_plan=plan, resilience=cfg)
        first = engine.serve(reqs(1.0))
        assert first[0].status == STATUS_ERROR  # trips the breaker
        assert engine.metrics.breaker_opened == 1

        second = engine.serve(reqs(1.0, 1.02))
        assert all(r.status == STATUS_REJECTED for r in second)
        assert all("circuit open for topology" in r.error for r in second)
        assert engine.metrics.breaker_rejections == 2
        snap = engine.snapshot()
        assert snap["breaker_opened"] == 1
        assert snap["breaker_rejections"] == 2

    def test_breaker_disabled_by_zero_threshold(self):
        cfg = ResilienceConfig(breaker_failure_threshold=0)
        engine = ScenarioEngine(max_batch=2, resilience=cfg)
        resp = engine.serve(reqs(1.0))[0]
        assert resp.status == STATUS_CONVERGED
        assert not engine.breakers


class TestDeadlines:
    def test_queue_expiry_times_out(self):
        engine = ScenarioEngine(max_batch=2)
        req = OPFRequest(
            request_id="late", options=SolveOptions(deadline_s=0.01)
        )
        assert engine.submit(req) is None
        time.sleep(0.03)
        resp = engine.run()[0]
        assert resp.status == STATUS_TIMEOUT
        assert "expired in queue" in resp.error
        assert engine.metrics.timeouts == 1

    def test_mid_solve_deadline_times_out(self):
        engine = ScenarioEngine(max_batch=2)
        req = OPFRequest(
            request_id="slow",
            options=SolveOptions(eps_rel=1e-12, max_iter=500_000, deadline_s=0.05),
        )
        resp = engine.serve([req])[0]
        assert resp.status == STATUS_TIMEOUT
        assert resp.objective is None
        assert "expired at iteration" in resp.error
        assert resp.iterations > 0

    def test_deadline_validation(self):
        with pytest.raises(ValueError, match="deadline_s"):
            SolveOptions(deadline_s=0.0)


class TestBackpressure:
    def test_queue_full_error_is_structured(self):
        queue = BoundedRequestQueue(maxsize=1)
        queue.retry_after_hint = 0.25
        queue.submit(OPFRequest(request_id="a"))
        with pytest.raises(QueueFullError) as exc_info:
            queue.submit(OPFRequest(request_id="b"))
        exc = exc_info.value
        assert exc.queue_depth == 1
        assert exc.maxsize == 1
        assert exc.retry_after_s == 0.25
        assert "retry in 0.250s" in str(exc)

    def test_rejection_response_carries_hint_and_gauges(self):
        engine = ScenarioEngine(max_batch=2, queue_size=2)
        assert engine.submit(OPFRequest(request_id="a")) is None
        assert engine.submit(OPFRequest(request_id="b")) is None
        resp = engine.submit(OPFRequest(request_id="c"))
        assert resp.status == STATUS_REJECTED
        assert "queue full (2/2 waiting)" in resp.error
        snap = engine.metrics.snapshot()
        assert snap["queue_depth"] == 2
        assert snap["rejected"] == 1

    def test_retry_after_hint_tracks_batch_latency(self):
        engine = ScenarioEngine(max_batch=2)
        assert engine.queue.retry_after_hint == 0.0
        engine.serve(reqs(1.0, 1.02))
        assert engine.queue.retry_after_hint > 0.0
        np.testing.assert_allclose(
            engine._batch_latency_ewma_s, engine.queue.retry_after_hint
        )

    def test_retry_after_is_never_negative(self):
        """Regression: a stale or miscomputed hint must clamp to 0.0, not
        tell callers to retry in the past."""
        exc = QueueFullError(queue_depth=4, maxsize=4, retry_after_s=-1.25)
        assert exc.retry_after_s == 0.0
        assert "retry in 0.000s" in str(exc)
        # A poisoned hint on the queue itself clamps at raise time too.
        queue = BoundedRequestQueue(maxsize=1)
        queue.retry_after_hint = -0.5
        queue.submit(OPFRequest(request_id="a"))
        with pytest.raises(QueueFullError) as exc_info:
            queue.submit(OPFRequest(request_id="b"))
        assert exc_info.value.retry_after_s == 0.0

    def test_zero_throughput_rejection_has_zero_hint(self):
        """Regression for the zero-throughput EWMA edge case: an engine
        that has served *no* batch yet has no latency estimate — its
        rejections must carry retry_after 0.0 ("no estimate"), and the
        EWMA must stay unset (0.0 is the sentinel, not a sample)."""
        engine = ScenarioEngine(max_batch=2, queue_size=1)
        assert engine._batch_latency_ewma_s == 0.0
        assert engine.submit(OPFRequest(request_id="a")) is None
        resp = engine.submit(OPFRequest(request_id="b"))
        assert resp.status == STATUS_REJECTED
        assert "retry in 0.000s" in resp.error
        snap = engine.metrics.snapshot()
        assert snap["backpressure_retry_after_s"] == 0.0
