"""Lint-style dtype discipline: under the fp32 backends, no hot-loop array
is silently promoted back to fp64.

NumPy promotes ``float32 op float64 -> float64``, so one forgotten bare
``np.asarray`` / Python-float constant in the iteration path quietly turns
the "fp32" solve into fp64 with extra casts.  These tests run real solves
under ``numpy32`` and assert every iterate, operator and intermediate the
strategies produce stays in the backend's compute dtype (reductions are
*supposed* to accumulate in fp64 — that is policy, not a leak)."""

import numpy as np
import pytest

import repro.serve.engine as serve_engine
from repro.backend import get_backend
from repro.core.baseline import BenchmarkADMM
from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.solver_free import SolverFreeADMM
from repro.decomposition import decompose
from repro.feeders import ieee13
from repro.formulation import build_centralized_lp
from repro.qp.projection import project_box_affine
from repro.serve import OPFRequest, ScenarioEngine
from repro.socp.solver import ConicSolverFreeADMM


@pytest.fixture(scope="module")
def dec13():
    return decompose(build_centralized_lp(ieee13()))


def _assert_hot_loop_dtypes(strategy, dtype):
    """Wrap the strategy's update hooks so every array entering or leaving
    the hot loop is dtype-checked on every iteration."""
    checked = {"global": 0, "local": 0, "dual": 0}
    orig_global, orig_local, orig_dual = (
        strategy.global_step, strategy.local_step, strategy.dual_step,
    )

    def global_step(z, lam, rho):
        assert z.dtype == dtype and lam.dtype == dtype
        x = orig_global(z, lam, rho)
        assert x.dtype == dtype, f"global update produced {x.dtype}"
        checked["global"] += 1
        return x

    def local_step(bx_eff, z_prev, lam, rho):
        assert bx_eff.dtype == dtype, f"gather produced {bx_eff.dtype}"
        z = orig_local(bx_eff, z_prev, lam, rho)
        assert z.dtype == dtype, f"local update produced {z.dtype}"
        checked["local"] += 1
        return z

    def dual_step(lam, bx_eff, z, rho):
        out = orig_dual(lam, bx_eff, z, rho)
        assert out.dtype == dtype, f"dual update produced {out.dtype}"
        checked["dual"] += 1
        return out

    strategy.global_step = global_step
    strategy.local_step = local_step
    strategy.dual_step = dual_step
    return checked


class TestSolverFree:
    def test_no_fp64_intermediates(self, dec13):
        solver = SolverFreeADMM(dec13, backend="numpy32", precision="fp32")
        checked = _assert_hot_loop_dtypes(solver, np.float32)
        result = solver.solve(max_iter=50)
        assert checked["global"] == checked["local"] == checked["dual"] == 50
        # Results leave the loop as host fp64.
        assert result.x.dtype == np.float64

    def test_batched_solver_operands_follow_backend(self, dec13):
        b = get_backend("numpy32")
        solver = BatchedLocalSolver.from_decomposition(dec13, backend=b)
        for bucket in solver.buckets:
            assert bucket.proj.dtype == np.float32
            assert bucket.bbar.dtype == np.float32
            assert bucket.v_pad.dtype == np.float32
        v = b.zeros(dec13.n_local)
        assert solver.solve(v).dtype == np.float32

    def test_constants_follow_backend(self, dec13):
        solver = SolverFreeADMM(dec13, backend="numpy32")
        for name in ("c", "lb", "ub", "counts"):
            assert getattr(solver, name).dtype == np.float32, name

    def test_default_backend_stays_fp64(self, dec13, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        solver = SolverFreeADMM(dec13)
        checked = _assert_hot_loop_dtypes(solver, np.float64)
        solver.solve(max_iter=20)
        assert checked["global"] == 20


class TestBenchmark:
    def test_no_fp64_consensus_state(self, dec13):
        solver = BenchmarkADMM(
            dec13, local_mode="projection", backend="numpy32", precision="fp32"
        )
        checked = _assert_hot_loop_dtypes(solver, np.float32)
        solver.solve(max_iter=25)
        assert checked["local"] == 25


class TestConic:
    def test_stacked_state_follows_backend(self):
        from repro.socp import build_bfm_socp, decompose_conic

        sdec = decompose_conic(build_bfm_socp(ieee13()))
        solver = ConicSolverFreeADMM(sdec, backend="numpy32", precision="fp32")
        for name in ("c", "lb", "ub", "counts"):
            assert getattr(solver, name).dtype == np.float32, name

    def test_no_fp64_intermediates(self):
        """Cone projections included, the conic hot loop stays fp32 — and
        the solution still leaves the host boundary as fp64."""
        from repro.socp import build_bfm_socp, decompose_conic

        sdec = decompose_conic(build_bfm_socp(ieee13()))
        solver = ConicSolverFreeADMM(sdec, backend="numpy32", precision="fp32")
        checked = _assert_hot_loop_dtypes(solver, np.float32)
        result = solver.solve(max_iter=40)
        assert checked["global"] == checked["local"] == checked["dual"] == 40
        assert result.x.dtype == np.float64


class TestServe:
    def test_stacked_solve_stays_fp32(self, monkeypatch):
        seen = []
        orig = serve_engine._StackedBatchStrategy.local_step

        def spy(self, bx_eff, z_prev, lam, rho):
            z = orig(self, bx_eff, z_prev, lam, rho)
            seen.append((bx_eff.dtype, z.dtype, lam.dtype))
            return z

        monkeypatch.setattr(serve_engine._StackedBatchStrategy, "local_step", spy)
        engine = ScenarioEngine(max_batch=4, backend="numpy32", precision="fp32")
        reqs = [
            OPFRequest(request_id=f"s{i}", load_scale=1 + 0.01 * i) for i in range(3)
        ]
        responses = engine.serve(reqs)
        assert all(r.status == "converged" for r in responses)
        assert seen and all(
            dt == (np.float32, np.float32, np.float32) for dt in seen
        )

    def test_modeled_gpu_time_uses_backend_itemsize(self):
        """The fp32 cost model halves the modeled memory traffic."""
        eng64 = ScenarioEngine(max_batch=2, backend="numpy64")
        eng32 = ScenarioEngine(max_batch=2, backend="numpy32")
        req = lambda i: OPFRequest(request_id=f"m{i}", load_scale=1.01)  # noqa: E731
        eng64.serve([req(0)])
        eng32.serve([req(1)])
        t64 = eng64.snapshot()["modeled_gpu_iteration_us"]
        t32 = eng32.snapshot()["modeled_gpu_iteration_us"]
        assert t32 < t64


class TestProjection:
    def test_preserves_caller_dtype(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([1.0])
        lb, ub = np.full(2, -2.0), np.full(2, 2.0)
        v32 = np.array([3.0, -3.0], dtype=np.float32)
        out32 = project_box_affine(v32, a, b, lb, ub)
        assert out32.dtype == np.float32
        out64 = project_box_affine(v32.astype(np.float64), a, b, lb, ub)
        assert out64.dtype == np.float64
        np.testing.assert_allclose(out32, out64, atol=1e-6)

    def test_int_input_promotes_to_fp64(self):
        out = project_box_affine(
            np.array([2, -2]), np.zeros((0, 2)), np.zeros(0),
            np.full(2, -1.0), np.full(2, 1.0),
        )
        assert out.dtype == np.float64


class TestRefinementHandoff:
    def test_refinement_segment_runs_fp64(self, dec13):
        """After the stall watch fires, the continuation really is fp64."""
        cfg = ADMMConfig(eps_rel=1e-6, max_iter=60_000)
        solver = SolverFreeADMM(dec13, cfg, backend="numpy32")
        dtypes = []
        result = solver.solve(callback=lambda i, x, z, lam, res: dtypes.append(x.dtype))
        assert result.converged
        assert dtypes[0] == np.float32
        assert dtypes[-1] == np.float64
