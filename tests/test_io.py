"""Tests for JSON/NPZ serialization."""

import numpy as np
import pytest

from repro.core import ADMMConfig, SolverFreeADMM
from repro.formulation import build_centralized_lp
from repro.io import (
    load_lp_npz,
    load_network,
    network_from_dict,
    network_to_dict,
    result_to_dict,
    save_lp_npz,
    save_network,
    save_result,
)
from repro.utils.exceptions import NetworkValidationError


class TestFeederJson:
    def test_round_trip_preserves_structure(self, ieee13_net, tmp_path):
        path = tmp_path / "net.json"
        save_network(ieee13_net, path)
        restored = load_network(path)
        assert list(restored.buses) == list(ieee13_net.buses)
        assert list(restored.lines) == list(ieee13_net.lines)
        assert restored.substation == ieee13_net.substation
        assert restored.mva_base == ieee13_net.mva_base

    def test_round_trip_preserves_numbers(self, ieee13_net, tmp_path):
        path = tmp_path / "net.json"
        save_network(ieee13_net, path)
        restored = load_network(path)
        for name, line in ieee13_net.lines.items():
            np.testing.assert_allclose(restored.lines[name].r, line.r)
            np.testing.assert_allclose(restored.lines[name].tap, line.tap)
        for name, load in ieee13_net.loads.items():
            assert restored.loads[name].connection == load.connection
            np.testing.assert_allclose(restored.loads[name].p_ref, load.p_ref)

    def test_round_trip_builds_identical_lp(self, ieee13_net, ieee13_lp, tmp_path):
        path = tmp_path / "net.json"
        save_network(ieee13_net, path)
        lp2 = build_centralized_lp(load_network(path))
        assert lp2.shape == ieee13_lp.shape
        np.testing.assert_allclose(
            lp2.a_matrix.toarray(), ieee13_lp.a_matrix.toarray()
        )
        np.testing.assert_allclose(lp2.b_vector, ieee13_lp.b_vector)

    def test_unknown_version_rejected(self, ieee13_net):
        data = network_to_dict(ieee13_net)
        data["format_version"] = 99
        with pytest.raises(NetworkValidationError, match="format version"):
            network_from_dict(data)


class TestLpNpz:
    def test_round_trip(self, small_lp, tmp_path):
        path = tmp_path / "lp.npz"
        save_lp_npz(small_lp, path)
        loaded = load_lp_npz(path)
        np.testing.assert_allclose(
            loaded["a"].toarray(), small_lp.a_matrix.toarray()
        )
        np.testing.assert_allclose(loaded["b"], small_lp.b_vector)
        np.testing.assert_allclose(loaded["lb"], small_lp.lb)


class TestResultExport:
    def test_result_dict_fields(self, small_dec):
        res = SolverFreeADMM(small_dec, ADMMConfig(max_iter=10)).solve()
        d = result_to_dict(res)
        assert d["iterations"] == 10
        assert "history" in d and len(d["history"]["pres"]) == 10
        assert "x" not in d

    def test_result_dict_with_vectors(self, small_dec):
        res = SolverFreeADMM(small_dec, ADMMConfig(max_iter=5)).solve()
        d = result_to_dict(res, include_vectors=True)
        assert len(d["x"]) == small_dec.lp.n_vars

    def test_save_result_is_json(self, small_dec, tmp_path):
        import json

        res = SolverFreeADMM(small_dec, ADMMConfig(max_iter=5)).solve()
        path = tmp_path / "res.json"
        save_result(res, path)
        loaded = json.loads(path.read_text())
        assert loaded["algorithm"] == res.algorithm
