"""Tests for centralized LP assembly (7) on real feeders."""

import numpy as np
import pytest

from repro.formulation import build_centralized_lp
from repro.network import Bus, DistributionNetwork
from repro.utils.exceptions import FormulationError


class TestAssembly:
    def test_ieee13_shape_consistency(self, ieee13_lp):
        m, n = ieee13_lp.shape
        assert ieee13_lp.a_matrix.shape == (m, n)
        assert ieee13_lp.b_vector.shape == (m,)
        assert ieee13_lp.cost.shape == (n,)
        assert len(ieee13_lp.rows) == m

    def test_objective_only_on_generation(self, ieee13_lp):
        nz = np.nonzero(ieee13_lp.cost)[0]
        kinds = {ieee13_lp.var_index.key_of(i)[0] for i in nz}
        assert kinds == {"pg"}

    def test_every_row_has_known_owner(self, ieee13_lp):
        net = ieee13_lp.network
        for row in ieee13_lp.rows:
            kind, name = row.owner
            assert (name in net.buses) if kind == "bus" else (name in net.lines)

    def test_variable_ordering_follows_paper(self, ieee13_lp):
        """(7): generation block first, then w, then loads, then flows."""
        kinds = [k[0] for k in ieee13_lp.var_index.keys]
        first_w = kinds.index("w")
        first_flow = kinds.index("pf")
        assert all(k in ("pg", "qg") for k in kinds[:first_w])
        assert all(k in ("pf", "qf", "pt", "qt") for k in kinds[first_flow:])

    def test_no_generator_raises(self):
        net = DistributionNetwork()
        net.add_bus(Bus("a", (1,)))
        with pytest.raises(FormulationError, match="no generators"):
            build_centralized_lp(net)

    def test_initial_point_respects_bounds(self, ieee13_lp):
        x0 = ieee13_lp.initial_point()
        assert np.all(x0 >= ieee13_lp.lb - 1e-12)
        assert np.all(x0 <= ieee13_lp.ub + 1e-12)


class TestReferenceSolution:
    def test_reference_feasible(self, ieee13_lp, ieee13_ref):
        assert ieee13_lp.equality_violation(ieee13_ref.x) < 1e-7
        assert ieee13_lp.bound_violation(ieee13_ref.x) < 1e-9

    def test_objective_covers_load_plus_losses(self, ieee13_lp, ieee13_ref):
        """Total generation must exceed total constant-power reference load
        scaled down by voltage dependence, and be of the same magnitude."""
        total_ref_load = ieee13_lp.network.total_load_p
        assert 0.5 * total_ref_load < ieee13_ref.objective < 1.5 * total_ref_load

    def test_voltages_within_bounds(self, ieee13_lp, ieee13_ref):
        vi = ieee13_lp.var_index
        w_idx = vi.indices_of_kind("w")
        w = ieee13_ref.x[w_idx]
        assert np.all(w >= 0.81 - 1e-9)
        assert np.all(w <= 1.21 + 1e-9)

    def test_substation_voltage_fixed(self, ieee13_lp, ieee13_ref):
        vi = ieee13_lp.var_index
        for phi in (1, 2, 3):
            assert ieee13_ref.x[vi.index(("w", "650", phi))] == pytest.approx(1.0)

    def test_regulator_boost_visible(self, ieee13_lp, ieee13_ref):
        """rg60 sits above the source voltage thanks to the ideal regulator."""
        vi = ieee13_lp.var_index
        w_rg = ieee13_ref.x[vi.index(("w", "rg60", 1))]
        assert w_rg == pytest.approx(1.0625**2, rel=1e-6)

    def test_compare_objective_helper(self, ieee13_ref):
        assert ieee13_ref.compare_objective(ieee13_ref.objective) == 0.0
        assert ieee13_ref.compare_objective(ieee13_ref.objective * 1.1) == pytest.approx(0.1)


class TestInfeasibleDetection:
    def test_infeasible_lp_raises(self, small_net):
        from repro.reference import solve_reference
        from repro.utils.exceptions import InfeasibleError

        net = small_net.copy()
        # Force an impossible voltage band at the substation neighbour.
        for bus in net.buses.values():
            if bus.name != net.substation:
                bus.w_min[:] = 1.5
                bus.w_max[:] = 1.6
        lp = build_centralized_lp(net)
        with pytest.raises(InfeasibleError):
            solve_reference(lp)
