"""Regenerate the golden package-level import-edge snapshot.

Run from the repo root after a deliberate dependency change::

    PYTHONPATH=src python tests/regen_project_graph.py

then review the diff of ``tests/data/project_graph_imports.json`` — every
changed edge should be one you meant to add or remove (and should still
satisfy the layer map in docs/ARCHITECTURE.md, or ``repro lint`` will
fail before this snapshot does).
"""

import json
from pathlib import Path

from repro.lint.engine import LintEngine, discover
from repro.lint.graph import ProjectGraph

GOLDEN = Path(__file__).parent / "data" / "project_graph_imports.json"


def snapshot(src_root: str = "src") -> dict:
    engine = LintEngine()
    analyses = [engine.analyze_file(p, r) for p, r in discover([src_root])]
    graph = ProjectGraph([a.module for a in analyses])
    return {
        pkg: sorted(dsts)
        for pkg, dsts in sorted(graph.package_edges().items())
    }


def main() -> None:
    doc = {
        "_comment": "Golden package-level import edges of src/repro. "
        "Regenerate with: PYTHONPATH=src python tests/regen_project_graph.py",
        "packages": snapshot(),
    }
    GOLDEN.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN} ({len(doc['packages'])} packages)")


if __name__ == "__main__":
    main()
