"""Additional coverage for the distributed runner's timeline accounting and
the simulated cluster's edge cases."""

import numpy as np
import pytest

from repro.core import ADMMConfig
from repro.parallel import (
    CPU_CLUSTER_COMM,
    CommModel,
    DistributedADMMRunner,
    SimulatedCluster,
)
from repro.parallel.runner import IterationTimeline


class TestIterationTimeline:
    def test_empty_timeline_means(self):
        tl = IterationTimeline()
        assert tl.mean_iteration_s == 0.0
        assert tl.mean_comm_s == 0.0

    def test_means(self):
        tl = IterationTimeline()
        tl.append(2.0, 1.5)
        tl.append(4.0, 2.5)
        assert tl.mean_iteration_s == pytest.approx(3.0)
        assert tl.mean_comm_s == pytest.approx(1.0)


class TestRunnerAccounting:
    def test_simulated_time_monotone_in_iterations(self, small_dec):
        r10 = DistributedADMMRunner(
            small_dec, 2, CPU_CLUSTER_COMM, ADMMConfig(max_iter=10)
        ).solve()
        r50 = DistributedADMMRunner(
            small_dec, 2, CPU_CLUSTER_COMM, ADMMConfig(max_iter=50)
        ).solve()
        assert r50.simulated_total_s > r10.simulated_total_s

    def test_single_rank_runs(self, small_dec):
        run = DistributedADMMRunner(
            small_dec, 1, CPU_CLUSTER_COMM, ADMMConfig(max_iter=20)
        ).solve()
        assert run.n_ranks == 1
        assert run.result.iterations == 20

    def test_ranks_capped_by_components(self, small_dec):
        run = DistributedADMMRunner(
            small_dec, 10_000, CPU_CLUSTER_COMM, ADMMConfig(max_iter=3)
        ).solve()
        assert run.n_ranks <= small_dec.n_components

    def test_history_recorded(self, small_dec):
        run = DistributedADMMRunner(
            small_dec, 2, CPU_CLUSTER_COMM, ADMMConfig(max_iter=7)
        ).solve()
        assert len(run.result.history) == 7


class TestClusterEdgeCases:
    def test_zero_latency_comm_still_counts_bandwidth(self, small_dec):
        costs = np.full(small_dec.n_components, 1e-6)
        free_latency = CommModel(latency_s=0.0, bandwidth_bytes_s=1e6)
        t = SimulatedCluster(small_dec, costs, 4, free_latency).local_update_timing()
        assert t.comm_s > 0.0

    def test_single_component_network(self):
        """A one-bus network decomposes into a single component and the
        cluster degenerates gracefully."""
        from repro.decomposition import decompose
        from repro.formulation import build_centralized_lp
        from repro.network import Bus, DistributionNetwork, Generator, Load

        net = DistributionNetwork(name="island")
        net.add_bus(Bus("a", (1, 2, 3), w_min=1.0, w_max=1.0))
        net.add_generator(Generator("g", "a", (1, 2, 3)))
        net.add_load(Load("l", "a", (1, 2, 3), p_ref=0.1, q_ref=0.05))
        lp = build_centralized_lp(net)
        dec = decompose(lp)
        assert dec.n_components == 1
        cluster = SimulatedCluster(
            dec, np.array([1e-6]), 8, CPU_CLUSTER_COMM
        )
        t = cluster.local_update_timing()
        assert t.n_ranks == 1
        assert t.comm_s == 0.0

    def test_island_network_solves(self):
        from repro.core import SolverFreeADMM
        from repro.decomposition import decompose
        from repro.formulation import build_centralized_lp
        from repro.network import Bus, DistributionNetwork, Generator, Load
        from repro.reference import solve_reference

        net = DistributionNetwork(name="island")
        net.add_bus(Bus("a", (1, 2, 3), w_min=1.0, w_max=1.0))
        net.add_generator(Generator("g", "a", (1, 2, 3)))
        net.add_load(Load("l", "a", (1, 2, 3), p_ref=0.1, q_ref=0.05))
        lp = build_centralized_lp(net)
        res = SolverFreeADMM(decompose(lp), ADMMConfig(max_iter=20000)).solve()
        ref = solve_reference(lp)
        assert res.converged
        assert ref.compare_objective(res.objective) < 1e-2
