"""Self-healing fleet tests: heartbeat death detection, auto-restart
with seeded backoff, crash-loop quarantine, cache re-warming, graceful
drain, and the seeded chaos soak (docs/SERVING.md, self-healing
section).

Sim-mode supervision runs on a virtual clock — one tick is one
heartbeat interval — so every kill/detect/backoff/restart/rewarm cycle
here is a deterministic function of (fleet seed, fault plan, supervisor
seed) and the replay assertions compare full reports for equality.
"""

import multiprocessing
import queue as queue_mod
import time

import pytest

from repro.fleet import (
    FleetConfig,
    FleetFrontend,
    FleetSupervisor,
    ProcessWorker,
    SupervisorConfig,
    WorkerSpec,
    generate_mixed_scenarios,
    run_chaos_soak,
)
from repro.fleet.worker import WORKER_READY
from repro.resilience import FaultPlan, WorkerCrash
from repro.serve import STATUS_CONVERGED, STATUS_ERROR, ScenarioEngine
from repro.serve.requests import OPFRequest
from repro.serve.warmstart import WarmStartCache
from repro.utils.exceptions import ReproError

#: Same pinned shard set as test_fleet: on a 2-ring, ieee13 and
#: synthetic:20:2 land on w1, the other two on w0.
FEEDERS = ["ieee13", "synthetic:20:0", "synthetic:20:2", "synthetic:20:9"]
W1_FEEDERS = {"ieee13", "synthetic:20:2"}


def mixed(count, seed=7):
    return generate_mixed_scenarios(FEEDERS, count, seed=seed)


def sim_supervisor(fleet, **overrides):
    defaults = dict(miss_threshold=2, restart_base_delay_s=0.05, seed=3)
    defaults.update(overrides)
    return FleetSupervisor(fleet, SupervisorConfig(**defaults))


# ---------------------------------------------------------------------------
# Warm-state export/import (the handoff primitive everything else uses)
class TestWarmStateHandoff:
    def test_cache_export_import_roundtrip_bit_identical(self):
        src = WarmStartCache(capacity=8)
        import numpy as np

        for i in range(3):
            src.store(
                "topoA", f"s{i}", np.array([1.0 + i]), np.array([2.0 * i]),
                np.array([3.0]), np.array([4.0]), iterations=10 + i,
            )
        src.store("topoB", "x", np.array([9.0]), np.array([1.0]),
                  np.array([1.0]), np.array([1.0]), iterations=5)
        dst = WarmStartCache(capacity=8)
        assert dst.import_entries(src.export_topology({"topoA"})) == 3
        assert len(dst) == 3
        hit = dst.lookup("topoA", np.array([2.0]))
        assert hit is not None
        entry, dist = hit
        assert dist == 0.0
        assert entry.iterations == 11
        assert dst.lookup("topoB", np.array([9.0])) is None

    def test_engine_export_import_rebuilds_plans_and_projections(self):
        src = ScenarioEngine(max_batch=4)
        reqs = [OPFRequest(request_id=f"a{i}", feeder="ieee13",
                           load_scale=1.0 + 0.01 * i) for i in range(3)]
        assert all(r.status == STATUS_CONVERGED for r in src.serve(reqs))
        key = reqs[0].topology_key()
        payload = src.export_topology_state({key})
        assert payload["plans"][key]["feeder"] == "ieee13"
        assert payload["plans"][key]["projections"]
        assert payload["warm_entries"]

        dst = ScenarioEngine(max_batch=4)
        counts = dst.import_topology_state(payload)
        assert counts["topologies"] == 1
        assert counts["projections"] == len(payload["plans"][key]["projections"])
        assert counts["warm_entries"] == len(payload["warm_entries"])
        # The imported plan reuses every handed-off factorization: serving
        # the same scenarios computes nothing new.
        dst.serve([OPFRequest(request_id="b0", feeder="ieee13", load_scale=1.0)])
        plan = dst.plans[key]
        assert plan.factorizations_computed == 0
        assert plan.factorizations_reused > 0

    def test_cold_engine_skips_warm_entries_when_warm_start_off(self):
        src = ScenarioEngine(max_batch=2)
        src.serve([OPFRequest(request_id="a", feeder="ieee13")])
        dst = ScenarioEngine(max_batch=2, warm_start=False)
        counts = dst.import_topology_state(src.export_topology_state(None))
        assert counts["warm_entries"] == 0
        assert len(dst.cache) == 0


# ---------------------------------------------------------------------------
# Heartbeat detection + auto-restart (sim, deterministic)
class TestSimRestart:
    def test_kill_detect_restart_restores_ring_and_serves_everything(self):
        plan = FaultPlan(seed=5, faults=(WorkerCrash(worker="w1", after_served=2),))
        fleet = FleetFrontend(
            FleetConfig(n_workers=2, max_batch=2, warm_start=False),
            fault_plan=plan,
        )
        routes_before = {f: None for f in FEEDERS}
        reqs = mixed(8)
        for r in reqs:
            routes_before[r.feeder] = fleet.ring.route(r.topology_key())
        sup = sim_supervisor(fleet)
        responses = sup.serve(reqs)
        assert [r.status for r in responses] == [STATUS_CONVERGED] * 8
        sup.stabilize()
        snap = fleet.metrics.snapshot()
        assert snap["fleet.worker_deaths"] == 1
        assert snap["fleet.restart.count"] == 1
        assert fleet.workers["w1"].alive
        # The ring is a pure function of the member set: restart restores
        # the original routing exactly.
        for r in reqs:
            assert fleet.ring.route(r.topology_key()) == routes_before[r.feeder]
        assert sup.capacity() == {"alive": 2, "target": 2, "recovered": True}
        # MTTR is virtual-clock deterministic: detection -> restart is
        # exactly one heartbeat tick with the test backoff.
        mttr = fleet.metrics.histogram("fleet.restart.mttr_s").values()
        assert list(mttr) == [1.0]

    def test_supervised_run_replays_bit_identically(self):
        def run():
            plan = FaultPlan(
                seed=5, faults=(WorkerCrash(worker="w1", after_served=2),)
            )
            fleet = FleetFrontend(
                FleetConfig(n_workers=2, max_batch=2, warm_start=False),
                fault_plan=plan,
            )
            sup = sim_supervisor(fleet)
            responses = sup.serve(mixed(8))
            sup.stabilize()
            return (
                [(r.request_id, r.status, r.objective, r.iterations)
                 for r in responses],
                sup.snapshot(),
                list(fleet.metrics.histogram("fleet.restart.mttr_s").values()),
            )

        assert run() == run()

    def test_restart_requires_a_dead_worker(self):
        fleet = FleetFrontend(FleetConfig(n_workers=2))
        with pytest.raises(ReproError, match="alive"):
            fleet.restart_worker("w0")


# ---------------------------------------------------------------------------
# Crash-loop quarantine
class TestQuarantine:
    def test_crash_looping_worker_is_quarantined_after_budget(self):
        # w1's schedule is [0, 0]: incarnation 0 dies at its first batch,
        # the restarted incarnation dies at *its* first batch too.  With
        # max_restarts=1 the second death exhausts the budget.
        plan = FaultPlan(seed=5, faults=(
            WorkerCrash(worker="w1", after_served=0),
            WorkerCrash(worker="w1", after_served=0),
        ))
        fleet = FleetFrontend(
            FleetConfig(n_workers=2, max_batch=2, warm_start=False),
            fault_plan=plan,
        )
        sup = sim_supervisor(fleet, max_restarts=1)
        wave1 = sup.serve(mixed(8))
        assert [r.status for r in wave1] == [STATUS_CONVERGED] * 8
        sup.stabilize()  # restarts w1 (incarnation 1, crash point 0)
        assert fleet.workers["w1"].alive
        # Wave 2 routes w1's keys back to it; it dies immediately, the
        # work fails over, and the second death quarantines the id.
        wave2 = sup.serve(mixed(8))
        assert [r.status for r in wave2] == [STATUS_CONVERGED] * 8
        cap = sup.stabilize()
        assert sup.quarantined() == {"w1"}
        assert cap == {"alive": 1, "target": 1, "recovered": True}
        snap = fleet.metrics.snapshot()
        assert snap["fleet.restart.quarantined"] == 1
        assert snap["fleet.restart.count"] == 1  # never restarted again
        # Its vnodes stay rebalanced: every topology now routes to w0.
        for r in mixed(4):
            assert fleet.ring.route(r.topology_key()) == "w0"
        # And the fleet keeps serving at reduced capacity.
        wave3 = sup.serve(mixed(4))
        assert [r.status for r in wave3] == [STATUS_CONVERGED] * 4


# ---------------------------------------------------------------------------
# Cache re-warming
class TestRewarm:
    def _run(self, rewarm):
        """One topology (ieee13, owned by w1), two batches of two.

        Wave 1: w1 serves its first batch then dies; the second batch
        fails over to w0, which serves it cold and keeps the warm states.
        The supervisor restarts w1 and (optionally) re-warms it from w0.
        Wave 2 repeats the same scenarios on the restored ring.
        """
        plan = FaultPlan(seed=5, faults=(WorkerCrash(worker="w1", after_served=2),))
        fleet = FleetFrontend(
            FleetConfig(n_workers=2, max_batch=2, warm_start=True),
            fault_plan=plan,
        )
        sup = sim_supervisor(fleet, rewarm=rewarm)
        wave1_reqs = generate_mixed_scenarios(["ieee13"], 4, seed=7)
        wave1 = sup.serve(wave1_reqs)
        assert all(r.status == STATUS_CONVERGED for r in wave1)
        sup.stabilize()
        assert fleet.workers["w1"].alive
        assert fleet.metrics.snapshot()["fleet.restart.count"] == 1
        assert fleet.ring.route(wave1_reqs[0].topology_key()) == "w1"
        wave2 = sup.serve(generate_mixed_scenarios(["ieee13"], 4, seed=7))
        assert all(r.status == STATUS_CONVERGED for r in wave2)
        return fleet, wave2

    def test_rewarmed_worker_recovers_warm_hits_after_restart(self):
        fleet, wave2 = self._run(rewarm=True)
        # The handoff replayed warm state from the survivor, so every
        # repeat scenario warm-starts on the restarted worker.
        assert all(r.warm_started for r in wave2)
        snap = fleet.metrics.snapshot()
        assert snap["fleet.rewarm.topologies"] == 1
        assert snap["fleet.rewarm.warm_entries"] > 0
        assert len(fleet.workers["w1"].engine.cache) > 0

    def test_without_rewarm_the_restarted_worker_starts_cold(self):
        fleet, wave2 = self._run(rewarm=False)
        # The first post-restart batch has nothing to warm-start from;
        # only later batches warm up from wave 2's own stores.  Strictly
        # fewer warm hits than the rewarmed run's 4-of-4.
        assert sum(r.warm_started for r in wave2) < len(wave2)
        assert "fleet.rewarm.topologies" not in fleet.metrics.snapshot()

    def test_rewarm_replays_projections_not_just_warm_states(self):
        fleet, _ = self._run(rewarm=True)
        plan = next(iter(fleet.workers["w1"].engine.plans.values()))
        # Wave 2 on the rewarmed worker reused handed-off factorizations.
        assert plan.factorizations_reused > 0


# ---------------------------------------------------------------------------
# Graceful drain
class TestDrain:
    def test_drain_finishes_in_flight_hands_off_and_removes(self):
        fleet = FleetFrontend(FleetConfig(n_workers=2, max_batch=2, warm_start=True))
        sup = sim_supervisor(fleet)
        assert all(r.status == STATUS_CONVERGED for r in sup.serve(mixed(8)))
        # Mid-stream: submit, make partial progress, then drain w1 with
        # requests still in flight on it.
        reqs = mixed(8, seed=11)
        for r in reqs:
            assert fleet.submit(r) is None
        fleet.poll()
        assert fleet._outstanding["w1"]
        report = sup.drain("w1")
        assert report["lost"] == 0 and report["duplicated"] == 0
        assert report["finished"] > 0
        assert report["handoff"]["topologies"] == 2
        assert report["handoff"]["warm_entries"] > 0
        assert "w1" not in fleet.workers
        assert "w1" not in fleet.ring.workers()
        # The remaining stream completes on the survivor, exactly once:
        # both waves reused the same ids, so each appears exactly twice.
        rest = fleet.run()
        counts: dict[str, int] = {}
        for r in fleet.responses:
            counts[r.request_id] = counts.get(r.request_id, 0) + 1
        assert set(counts) == {r.request_id for r in reqs}
        assert all(n == 2 for n in counts.values())
        assert all(r.status == STATUS_CONVERGED for r in rest)
        snap = fleet.metrics.snapshot()
        assert snap["fleet.drain.count"] == 1
        assert snap["fleet.drain.handoff_entries"] > 0

    def test_drain_refuses_dead_and_last_workers(self):
        fleet = FleetFrontend(FleetConfig(n_workers=2, warm_start=False))
        sup = sim_supervisor(fleet)
        fleet.kill_worker("w1")
        with pytest.raises(ReproError, match="dead"):
            sup.drain("w1")
        with pytest.raises(ReproError, match="last live worker"):
            sup.drain("w0")
        with pytest.raises(ReproError, match="unknown"):
            sup.drain("w9")


# ---------------------------------------------------------------------------
# Idempotent death handling (satellite regression)
class TestIdempotentDeaths:
    def test_kill_worker_twice_is_a_single_death(self):
        fleet = FleetFrontend(FleetConfig(n_workers=2, warm_start=False))
        for r in mixed(8):
            fleet.submit(r)
        fleet.kill_worker("w1")
        fleet.kill_worker("w1")  # no-op on an already-dead worker
        fleet.poll()
        fleet._handle_deaths()  # doubly-reported: guarded, no double reroute
        snap = fleet.metrics.snapshot()
        assert snap["fleet.worker_deaths"] == 1
        responses = fleet.run()
        ids = [r.request_id for r in fleet.responses]
        assert len(ids) == len(set(ids)) == 8
        assert all(r.status == STATUS_CONVERGED for r in responses)

    def test_restart_clears_the_death_record_for_redetection(self):
        fleet = FleetFrontend(FleetConfig(n_workers=2, warm_start=False))
        fleet.kill_worker("w1")
        fleet.poll()
        assert "w1" in fleet._dead_handled
        fleet.restart_worker("w1")
        assert "w1" not in fleet._dead_handled
        fleet.kill_worker("w1")
        fleet.poll()
        assert fleet.metrics.snapshot()["fleet.worker_deaths"] == 2


# ---------------------------------------------------------------------------
# The seeded chaos soak (acceptance: >= 4 workers, sim mode)
class TestChaosSoak:
    def test_soak_invariants_hold_under_kill_restart_storm(self):
        report = run_chaos_soak(n_workers=4, n_requests=24, kills=3, seed=17)
        assert report.ok
        assert report.deaths >= 2  # seed 17 targets three loaded workers
        assert report.restarts == report.deaths
        assert report.mttr_s  # measured, virtual-clock seconds
        assert report.quarantined == []

    def test_soak_replays_bit_identically_from_the_seed(self):
        a = run_chaos_soak(n_workers=4, n_requests=16, kills=3, seed=5)
        b = run_chaos_soak(n_workers=4, n_requests=16, kills=3, seed=5)
        assert a.as_dict() == b.as_dict()
        assert a.deaths >= 1

    def test_storm_generator_is_survivable_and_ascending(self):
        wids = ["w0", "w1", "w2", "w3"]
        plan = FaultPlan.fleet_storm(seed=9, worker_ids=wids, kills=6)
        targeted = {f.worker for f in plan.faults}
        assert len(targeted) < len(wids)  # at least one spared
        for wid in wids:
            schedule = plan.worker_crash_schedule(wid)
            assert schedule == sorted(schedule)
            if schedule:
                assert plan.worker_crash_after(wid) == schedule[0]


# ---------------------------------------------------------------------------
# Process-mode lifecycle edges (satellites) + the real restart cycle
class TestProcessLifecycle:
    def test_process_kill_restart_cycle_heals_and_stays_exact(self):
        """Acceptance: a kill+restart cycle in real multiprocessing mode —
        genuinely dead process, supervisor restart, exactly-once and
        bit-identical responses, capacity restored."""
        report = run_chaos_soak(
            n_workers=2, n_requests=8, kills=1, seed=5, mode="process",
            feeders=("ieee13", "synthetic:20:0"),
        )
        assert report.ok
        assert report.deaths >= 1
        assert report.restarts >= 1

    def test_heartbeats_flow_from_idle_process_workers(self):
        config = FleetConfig(
            n_workers=1, mode="process", heartbeat_interval_s=0.05
        )
        with FleetFrontend(config) as fleet:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                fleet._drain_response_q(timeout=0.1)
                if fleet.metrics.snapshot().get("fleet.heartbeat.received", 0) >= 2:
                    break
            snap = fleet.metrics.snapshot()
            assert snap["fleet.heartbeat.received"] >= 2
            assert fleet.last_heartbeat["w0"] > 0

    def test_shutdown_escalates_to_terminate_on_a_hung_worker(self):
        ctx = multiprocessing.get_context()
        response_q = ctx.Queue()
        worker = ProcessWorker(
            WorkerSpec(worker_id="hang", hang_on_shutdown=True,
                       heartbeat_interval_s=0.05),
            ctx, response_q,
        )
        kind, wid, _ = response_q.get(timeout=30.0)
        assert (kind, wid) == (WORKER_READY, "hang")
        t0 = time.monotonic()
        worker.shutdown(timeout_s=0.5)
        assert not worker.alive  # terminate() reaped it
        assert time.monotonic() - t0 < 10.0
        worker.shutdown()  # idempotent
        response_q.close()

    def test_close_with_outstanding_answers_error_responses(self):
        config = FleetConfig(n_workers=1, mode="process", warm_start=False)
        fleet = FleetFrontend(config)
        reqs = mixed(2)
        for r in reqs:
            assert fleet.submit(r) is None
        fleet.kill_worker("w0")  # die with the requests unanswered
        fleet.close()
        by_id = {r.request_id: r for r in fleet.responses}
        assert set(by_id) == {r.request_id for r in reqs}
        assert all(r.status == STATUS_ERROR for r in by_id.values())

    def test_double_close_is_a_noop(self):
        fleet = FleetFrontend(FleetConfig(n_workers=1, mode="process"))
        fleet.close()
        fleet.close()  # second close: no exception, no double-shutdown

    def test_sim_close_is_guarded_too(self):
        fleet = FleetFrontend(FleetConfig(n_workers=1))
        for r in mixed(2):
            fleet.submit(r)
        fleet.close()
        assert all(r.status == STATUS_ERROR for r in fleet.responses)
        fleet.close()


# ---------------------------------------------------------------------------
# Spec validation
class TestSpecValidation:
    def test_heartbeat_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="heartbeat_interval_s"):
            WorkerSpec(worker_id="w0", heartbeat_interval_s=0.0)

    def test_supervisor_config_validation(self):
        with pytest.raises(ValueError, match="miss_threshold"):
            SupervisorConfig(miss_threshold=0)
        with pytest.raises(ValueError, match="max_restarts"):
            SupervisorConfig(max_restarts=-1)
        with pytest.raises(ValueError, match="spare"):
            FaultPlan.fleet_storm(seed=1, worker_ids=["w0"], kills=1, spare=1)
