"""Tests for the solver-based benchmark ADMM."""

import numpy as np
import pytest

from repro.core import ADMMConfig, BenchmarkADMM, SolverFreeADMM


class TestLocalModes:
    def test_interior_point_and_projection_agree(self, small_dec, rng):
        """Both local solvers compute the same box-constrained projection, so
        the iterate sequences coincide."""
        cfg = ADMMConfig(max_iter=8)
        ri = BenchmarkADMM(small_dec, cfg, local_mode="interior_point").solve()
        rp = BenchmarkADMM(small_dec, cfg, local_mode="projection").solve()
        np.testing.assert_allclose(ri.z, rp.z, atol=1e-6)
        np.testing.assert_allclose(ri.x, rp.x, atol=1e-6)

    def test_unknown_mode_rejected(self, small_dec):
        with pytest.raises(ValueError, match="unknown local_mode"):
            BenchmarkADMM(small_dec, local_mode="magic")

    def test_local_solutions_feasible(self, small_dec, rng):
        # Exact local feasibility is an fp64-grade property — pin the backend.
        b = BenchmarkADMM(
            small_dec, ADMMConfig(), local_mode="projection", backend="numpy64"
        )
        v = rng.standard_normal(small_dec.n_local)
        lam = np.zeros(small_dec.n_local)
        z = b.local_update(v, lam, 100.0)
        for s, comp in enumerate(small_dec.components):
            sl = small_dec.component_slice(s)
            np.testing.assert_allclose(comp.a @ z[sl], comp.b, atol=1e-6)
            assert np.all(z[sl] >= comp.lb - 1e-7)
            assert np.all(z[sl] <= comp.ub + 1e-7)


class TestGlobalUpdate:
    def test_unclipped(self, small_dec, rng):
        """The benchmark keeps bounds local: its global update must NOT clip
        (model (8)), unlike Algorithm 1's (model (9))."""
        bench = BenchmarkADMM(small_dec)
        free = SolverFreeADMM(small_dec)
        z = 100.0 * rng.standard_normal(small_dec.n_local)
        lam = rng.standard_normal(small_dec.n_local)
        xb = bench.global_update(z, lam, 100.0)
        xf = free.global_update(z, lam, 100.0)
        lp = small_dec.lp
        # The clipped version differs wherever bounds are active.
        active = (xb < lp.lb) | (xb > lp.ub)
        assert np.any(active)
        np.testing.assert_allclose(xf, np.clip(xb, lp.lb, lp.ub))


class TestConvergence:
    def test_converges_to_reference(self, small_dec, small_ref):
        res = BenchmarkADMM(
            small_dec, ADMMConfig(max_iter=30000), local_mode="projection"
        ).solve()
        assert res.converged
        assert small_ref.compare_objective(res.objective) < 2e-2

    def test_iterations_comparable_to_solver_free(self, small_dec):
        """Paper Table V: similar iteration counts on small instances."""
        cfg = ADMMConfig(max_iter=30000)
        rb = BenchmarkADMM(small_dec, cfg, local_mode="projection").solve()
        rf = SolverFreeADMM(small_dec, cfg).solve()
        assert rb.converged and rf.converged
        ratio = rb.iterations / rf.iterations
        assert 0.2 < ratio < 5.0

    def test_solver_free_local_update_much_faster(self, small_dec):
        """The paper's core claim at the smallest scale: per-iteration local
        update cost of the benchmark (solver calls) dwarfs Algorithm 1's
        closed form."""
        cfg = ADMMConfig(max_iter=5)
        rb = BenchmarkADMM(small_dec, cfg, local_mode="interior_point").solve()
        rf = SolverFreeADMM(small_dec, cfg).solve()
        assert rb.timers["local"] > 10 * rf.timers["local"]

    def test_warm_start(self, small_dec):
        # The first solve uses a tighter tolerance than the warm restart:
        # a run that stops exactly at the relative criterion (16) can still
        # be drifting, in which case restarting re-trips the dual residual.
        # Warm-starting from a solidly converged point must re-converge
        # immediately at the working tolerance.
        first = BenchmarkADMM(
            small_dec, ADMMConfig(max_iter=60000, eps_rel=3e-4), local_mode="projection"
        ).solve()
        assert first.converged
        again = BenchmarkADMM(
            small_dec, ADMMConfig(max_iter=30000), local_mode="projection"
        ).solve(x0=first.x, z0=first.z, lam0=first.lam)
        assert again.converged
        assert again.iterations <= 3


class TestMeasurement:
    def test_measure_local_costs_shape(self, small_dec):
        b = BenchmarkADMM(small_dec)
        costs = b.measure_local_costs(repeats=1)
        assert costs.shape == (small_dec.n_components,)
        assert np.all(costs > 0)
