"""Tests for the component partition (Section V-A rules, Table III)."""

import pytest

from repro.decomposition.partition import partition_components
from repro.network import Bus, DistributionNetwork, Line
from repro.utils.exceptions import DecompositionError


def path_net(n: int) -> DistributionNetwork:
    net = DistributionNetwork()
    for i in range(n):
        net.add_bus(Bus(f"b{i}", (1,)))
    for i in range(n - 1):
        net.add_line(Line(f"l{i}", f"b{i}", f"b{i+1}", (1,)))
    return net


class TestCounts:
    def test_table3_identity(self, ieee13_net):
        _, counts = partition_components(ieee13_net)
        assert counts.n_components == counts.n_nodes + counts.n_lines - counts.n_leaves
        assert counts.n_nodes == ieee13_net.n_buses
        assert counts.n_lines == ieee13_net.n_lines

    def test_ieee13_leaf_count(self, ieee13_net):
        """IEEE13 leaves (non-substation, degree one): 634, 646, 680, 611,
        652, 675."""
        _, counts = partition_components(ieee13_net)
        assert counts.n_leaves == 6

    def test_every_owner_covered_once(self, ieee13_net):
        specs, _ = partition_components(ieee13_net)
        owners = [o for spec in specs for o in spec.owners()]
        assert len(owners) == len(set(owners))
        assert len(owners) == ieee13_net.n_buses + ieee13_net.n_lines


class TestLeafMerging:
    def test_path_merges_far_end(self):
        net = path_net(3)
        net.substation = "b0"
        specs, counts = partition_components(net)
        kinds = sorted(s.kind for s in specs)
        assert counts.n_leaves == 1
        assert kinds == ["bus", "bus", "leaf", "line"]

    def test_no_substation_both_ends_leaves(self):
        """A 2-bus network: only one endpoint may absorb the line."""
        net = path_net(2)
        specs, counts = partition_components(net)
        assert counts.n_leaves == 1
        assert sorted(s.kind for s in specs) == ["bus", "leaf"]

    def test_merge_disabled(self):
        net = path_net(4)
        specs, counts = partition_components(net, merge_leaves=False)
        assert counts.n_leaves == 0
        assert len(specs) == 4 + 3

    def test_leaf_component_contains_bus_and_line(self):
        net = path_net(3)
        net.substation = "b0"
        specs, _ = partition_components(net)
        leaf = next(s for s in specs if s.kind == "leaf")
        assert leaf.buses == ("b2",)
        assert leaf.lines == ("l1",)


class TestErrors:
    def test_multi_bus_no_lines(self):
        net = DistributionNetwork()
        net.add_bus(Bus("a", (1,)))
        net.add_bus(Bus("b", (1,)))
        with pytest.raises(DecompositionError, match="without lines"):
            partition_components(net)

    def test_single_bus_ok(self):
        net = DistributionNetwork()
        net.add_bus(Bus("a", (1,)))
        specs, counts = partition_components(net)
        assert len(specs) == 1
        assert counts.n_components == 1
