"""Tests for the AST-based invariant linter (repro.lint)."""

import json

import pytest

from repro.cli import main
from repro.lint import (
    LintConfigError,
    LintEngine,
    all_rules,
    fingerprint,
    format_github,
    format_json,
    format_stats,
    format_text,
    get_rules,
    load_baseline,
    save_baseline,
    scope_path,
)
from repro.telemetry import MetricsRegistry


def lint_source(source: str, relpath: str, tmp_path, rules=None):
    """Write ``source`` at ``relpath`` under ``tmp_path`` and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    engine = LintEngine(get_rules(rules) if rules else None)
    findings, _ = engine.lint_file(path)
    return findings


def rule_ids(findings):
    return sorted({f.rule for f in findings})


class TestRegistry:
    def test_all_rules_registered(self):
        assert [r.id for r in all_rules()] == [
            "R001", "R002", "R003", "R004", "R005",
            "R100", "R101", "R102", "R103",
        ]

    def test_selection(self):
        assert [r.id for r in get_rules(["R001", "r003"])] == ["R001", "R003"]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="R999"):
            get_rules(["R999"])

    def test_empty_selection_raises(self):
        with pytest.raises(KeyError, match="empty"):
            get_rules([" "])

    def test_describe_has_rationale(self):
        for rule in all_rules():
            card = rule.describe()
            assert card["id"] and card["severity"] in ("error", "warning")
            assert card["rationale"]


class TestScopePath:
    def test_repro_relative(self, tmp_path):
        p = tmp_path / "src" / "repro" / "core" / "loop.py"
        assert scope_path(p) == "core/loop.py"

    def test_fixture_tree_falls_back_to_posix(self, tmp_path):
        p = tmp_path / "core" / "mod.py"
        assert scope_path(p).endswith("core/mod.py")


class TestBackendDiscipline:
    def test_raw_norm_in_core_flagged(self, tmp_path):
        src = "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        findings = lint_source(src, "src/repro/core/mod.py", tmp_path)
        assert rule_ids(findings) == ["R001"]
        assert "Backend.norm" in findings[0].message

    def test_alias_resolution(self, tmp_path):
        src = "from numpy.linalg import norm as nrm\n\ndef f(v):\n    return nrm(v)\n"
        findings = lint_source(src, "src/repro/core/mod.py", tmp_path)
        assert rule_ids(findings) == ["R001"]

    def test_backend_call_not_flagged(self, tmp_path):
        src = "def f(backend, v):\n    return backend.norm(v)\n"
        assert lint_source(src, "src/repro/core/mod.py", tmp_path) == []

    def test_structural_numpy_allowed(self, tmp_path):
        src = (
            "import numpy as np\n\n"
            "def f(v):\n"
            "    return np.concatenate([np.asarray(v), np.arange(3)])\n"
        )
        assert lint_source(src, "src/repro/core/mod.py", tmp_path) == []

    def test_out_of_scope_module_not_flagged(self, tmp_path):
        src = "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        assert lint_source(src, "src/repro/network/mod.py", tmp_path) == []

    def test_line_suppression(self, tmp_path):
        src = (
            "import numpy as np\n\n"
            "def f(v):\n"
            "    return np.linalg.norm(v)  # repro-lint: disable=R001\n"
        )
        assert lint_source(src, "src/repro/core/mod.py", tmp_path) == []

    def test_unused_suppression_reported(self, tmp_path):
        src = "x = 1  # repro-lint: disable=R001\n"
        findings = lint_source(src, "src/repro/core/mod.py", tmp_path)
        assert rule_ids(findings) == ["R000"]
        assert "unused suppression" in findings[0].message

    def test_file_suppression(self, tmp_path):
        src = (
            "# repro-lint: disable-file=R001\n"
            "import numpy as np\n\n"
            "def f(v):\n"
            "    return np.linalg.norm(v) + np.sum(v)\n"
        )
        assert lint_source(src, "src/repro/core/mod.py", tmp_path) == []

    def test_pragma_in_docstring_is_not_a_suppression(self, tmp_path):
        src = (
            '"""Docs mention # repro-lint: disable=R001 syntax."""\n'
            "import numpy as np\n\n"
            "def f(v):\n"
            "    return np.linalg.norm(v)\n"
        )
        findings = lint_source(src, "src/repro/core/mod.py", tmp_path)
        assert rule_ids(findings) == ["R001"]


class TestDeterminism:
    def test_wall_clock_flagged(self, tmp_path):
        src = "import time\n\ndef f():\n    return time.time()\n"
        findings = lint_source(src, "src/repro/resilience/mod.py", tmp_path)
        assert rule_ids(findings) == ["R002"]

    def test_perf_counter_allowed(self, tmp_path):
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert lint_source(src, "src/repro/resilience/mod.py", tmp_path) == []

    def test_global_numpy_rng_flagged(self, tmp_path):
        src = "import numpy as np\n\ndef f():\n    return np.random.rand(3)\n"
        findings = lint_source(src, "src/repro/parallel/mod.py", tmp_path)
        assert rule_ids(findings) == ["R002"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        src = "import numpy as np\n\nrng = np.random.default_rng()\n"
        findings = lint_source(src, "src/repro/core/mod.py", tmp_path)
        assert rule_ids(findings) == ["R002"]
        assert "unseeded" in findings[0].message

    def test_seeded_default_rng_allowed(self, tmp_path):
        src = "import numpy as np\n\nrng = np.random.default_rng(7)\n"
        assert lint_source(src, "src/repro/core/mod.py", tmp_path) == []

    def test_datetime_now_flagged(self, tmp_path):
        src = "import datetime\n\ndef f():\n    return datetime.datetime.now()\n"
        findings = lint_source(src, "src/repro/gpu/mod.py", tmp_path)
        assert rule_ids(findings) == ["R002"]

    def test_out_of_scope_wall_clock_allowed(self, tmp_path):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(src, "src/repro/io/mod.py", tmp_path) == []


class TestPrecisionDiscipline:
    def test_dtype_float_literal_flagged(self, tmp_path):
        src = "import numpy as np\n\nx = np.zeros(3, dtype=float)\n"
        findings = lint_source(src, "src/repro/network/mod.py", tmp_path)
        assert rule_ids(findings) == ["R003"]
        assert findings[0].severity == "warning"

    def test_astype_np_float32_flagged(self, tmp_path):
        src = "import numpy as np\n\ndef f(x):\n    return x.astype(np.float32)\n"
        findings = lint_source(src, "src/repro/serve/mod.py", tmp_path)
        assert rule_ids(findings) == ["R003"]

    def test_string_dtype_flagged(self, tmp_path):
        src = "import numpy as np\n\nx = np.zeros(3, dtype=\"float32\")\n"
        findings = lint_source(src, "src/repro/network/mod.py", tmp_path)
        assert rule_ids(findings) == ["R003"]

    def test_int_dtype_allowed(self, tmp_path):
        src = "import numpy as np\n\nx = np.zeros(3, dtype=np.int64)\n"
        assert lint_source(src, "src/repro/network/mod.py", tmp_path) == []

    def test_variable_dtype_allowed(self, tmp_path):
        src = "def f(x, backend):\n    return x.astype(backend.compute_dtype)\n"
        assert lint_source(src, "src/repro/serve/mod.py", tmp_path) == []

    def test_backend_package_excluded(self, tmp_path):
        src = "import numpy as np\n\nx = np.zeros(3, dtype=np.float32)\n"
        assert lint_source(src, "src/repro/backend/mod.py", tmp_path) == []

    def test_qp_package_excluded(self, tmp_path):
        src = "import numpy as np\n\ndef f(x):\n    return x.astype(np.float64)\n"
        assert lint_source(src, "src/repro/qp/mod.py", tmp_path) == []


class TestTelemetryHygiene:
    def test_span_outside_with_flagged(self, tmp_path):
        src = (
            "def f(tracer):\n"
            "    span = tracer.span(\"admm.solve\")\n"
            "    span.__enter__()\n"
        )
        findings = lint_source(src, "src/repro/core/mod.py", tmp_path)
        assert rule_ids(findings) == ["R004"]

    def test_with_span_allowed(self, tmp_path):
        src = "def f(tracer):\n    with tracer.span(\"admm.solve\"):\n        pass\n"
        assert lint_source(src, "src/repro/core/mod.py", tmp_path) == []

    def test_conditional_with_span_allowed(self, tmp_path):
        src = (
            "import contextlib\n\n"
            "def f(tracer, on):\n"
            "    with tracer.span(\"admm.solve\") if on else contextlib.nullcontext():\n"
            "        pass\n"
        )
        assert lint_source(src, "src/repro/core/mod.py", tmp_path) == []

    def test_bad_metric_name_flagged(self, tmp_path):
        src = "def f(reg):\n    reg.counter(\"Serve.Latency\").inc()\n"
        findings = lint_source(src, "src/repro/serve/mod.py", tmp_path)
        assert rule_ids(findings) == ["R004"]

    def test_undotted_metric_name_flagged(self, tmp_path):
        src = "def f(reg):\n    reg.counter(\"latency\").inc()\n"
        findings = lint_source(src, "src/repro/serve/mod.py", tmp_path)
        assert rule_ids(findings) == ["R004"]

    def test_unregistered_namespace_flagged(self, tmp_path):
        src = "def f(reg):\n    reg.counter(\"mystery.count\").inc()\n"
        findings = lint_source(src, "src/repro/serve/mod.py", tmp_path)
        assert rule_ids(findings) == ["R004"]
        assert "namespace" in findings[0].message

    def test_good_metric_name_allowed(self, tmp_path):
        src = "def f(reg):\n    reg.histogram(\"serve.latency_s\").observe(1.0)\n"
        assert lint_source(src, "src/repro/serve/mod.py", tmp_path) == []

    def test_stochastic_namespace_registered(self, tmp_path):
        src = "def f(reg):\n    reg.counter(\"stochastic.scenarios\").inc()\n"
        assert lint_source(src, "src/repro/serve/mod.py", tmp_path) == []

    def test_stochastic_lookalike_namespace_flagged(self, tmp_path):
        src = "def f(reg):\n    reg.counter(\"stochastics.scenarios\").inc()\n"
        findings = lint_source(src, "src/repro/serve/mod.py", tmp_path)
        assert rule_ids(findings) == ["R004"]
        assert "namespace" in findings[0].message

    def test_dynamic_metric_name_skipped(self, tmp_path):
        src = "def f(reg, name):\n    reg.counter(f\"serve.{name}\").inc()\n"
        assert lint_source(src, "src/repro/serve/mod.py", tmp_path) == []


class TestExceptionDiscipline:
    def test_bare_except_flagged(self, tmp_path):
        src = "try:\n    x = 1\nexcept:\n    x = 2\n"
        findings = lint_source(src, "src/repro/utils/mod.py", tmp_path)
        assert rule_ids(findings) == ["R005"]

    def test_swallowed_broad_except_flagged(self, tmp_path):
        src = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        findings = lint_source(src, "src/repro/utils/mod.py", tmp_path)
        assert rule_ids(findings) == ["R005"]

    def test_broad_except_with_body_allowed(self, tmp_path):
        src = (
            "try:\n"
            "    x = 1\n"
            "except Exception as exc:\n"
            "    print(exc)\n"
            "    raise\n"
        )
        assert lint_source(src, "src/repro/utils/mod.py", tmp_path) == []

    def test_specific_except_pass_allowed(self, tmp_path):
        src = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert lint_source(src, "src/repro/utils/mod.py", tmp_path) == []


class TestFingerprints:
    def test_stable_under_line_drift(self, tmp_path):
        src = "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        before = lint_source(src, "src/repro/core/a.py", tmp_path)
        drifted = "import numpy as np\n\nX = 1\nY = 2\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        after = lint_source(drifted, "src/repro/core/a.py", tmp_path)
        assert before[0].fingerprint == after[0].fingerprint
        assert before[0].line != after[0].line

    def test_duplicate_lines_get_distinct_fingerprints(self, tmp_path):
        src = (
            "import numpy as np\n\n"
            "def f(v):\n"
            "    a = np.linalg.norm(v)\n"
            "    b = np.linalg.norm(v)\n"
            "    return a + b\n"
        )
        findings = lint_source(src, "src/repro/core/a.py", tmp_path)
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_fingerprint_changes_with_content(self):
        a = fingerprint("R001", "p.py", "np.linalg.norm(v)", 0)
        b = fingerprint("R001", "p.py", "np.linalg.norm(w)", 0)
        assert a != b and len(a) == 16


class TestBaseline:
    def _engine_run(self, tmp_path, source, baseline=None):
        (tmp_path / "core").mkdir(exist_ok=True)
        (tmp_path / "core" / "mod.py").write_text(source)
        return LintEngine().run([str(tmp_path)], baseline)

    def test_baseline_roundtrip_grandfathers(self, tmp_path):
        src = "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        first = self._engine_run(tmp_path, src)
        assert len(first.findings) == 1
        bl_path = tmp_path / "bl.json"
        save_baseline(bl_path, first.findings)
        second = self._engine_run(tmp_path, src, load_baseline(bl_path))
        assert second.findings == [] and len(second.baselined) == 1
        assert second.clean

    def test_fixed_finding_goes_stale(self, tmp_path):
        src = "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        first = self._engine_run(tmp_path, src)
        bl_path = tmp_path / "bl.json"
        save_baseline(bl_path, first.findings)
        fixed = "def f(backend, v):\n    return backend.norm(v)\n"
        result = self._engine_run(tmp_path, fixed, load_baseline(bl_path))
        assert result.findings == []
        assert result.stale_baseline == [first.findings[0].fingerprint]

    def test_new_finding_fails_despite_baseline(self, tmp_path):
        src = "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        first = self._engine_run(tmp_path, src)
        bl_path = tmp_path / "bl.json"
        save_baseline(bl_path, first.findings)
        grown = src + "\ndef g(v):\n    return np.sum(v)\n"
        result = self._engine_run(tmp_path, grown, load_baseline(bl_path))
        assert len(result.findings) == 1 and len(result.baselined) == 1
        assert "np.sum" in result.findings[0].message

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bl.json"
        bad.write_text("{\"version\": 99}")
        with pytest.raises(LintConfigError, match="unsupported format"):
            load_baseline(bad)

    def test_unparseable_baseline_raises(self, tmp_path):
        bad = tmp_path / "bl.json"
        bad.write_text("not json")
        with pytest.raises(LintConfigError, match="not valid JSON"):
            load_baseline(bad)


class TestReports:
    def _result(self, tmp_path):
        (tmp_path / "core").mkdir(exist_ok=True)
        (tmp_path / "core" / "mod.py").write_text(
            "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        )
        return LintEngine().run([str(tmp_path)])

    def test_json_schema(self, tmp_path):
        doc = json.loads(format_json(self._result(tmp_path)))
        assert doc["schema_version"] == 1
        assert set(doc["summary"]) == {
            "files", "findings", "baselined", "suppressed",
            "stale_baseline", "clean", "by_rule",
        }
        finding = doc["findings"][0]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message", "fingerprint",
        }
        assert doc["summary"]["by_rule"] == {"R001": 1}
        assert {r["id"] for r in doc["rules"]} == {
            "R001", "R002", "R003", "R004", "R005",
            "R100", "R101", "R102", "R103",
        }

    def test_text_format(self, tmp_path):
        text = format_text(self._result(tmp_path))
        assert "core/mod.py:4:" in text
        assert "R001 [error]" in text
        assert "FAIL" in text

    def test_github_annotations(self, tmp_path):
        out = format_github(self._result(tmp_path))
        assert out.startswith("::error file=")
        assert ",line=4," in out and "::R001:" in out

    def test_stats_lists_all_rules(self, tmp_path):
        out = format_stats(self._result(tmp_path))
        for rid in (
            "R001", "R002", "R003", "R004", "R005",
            "R100", "R101", "R102", "R103",
        ):
            assert rid in out

    def test_stats_reports_graph_and_timings(self, tmp_path):
        out = format_stats(self._result(tmp_path))
        assert "project graph:" in out
        assert "timings:" in out and "graph_build" in out

    def test_metrics_recording(self, tmp_path):
        registry = MetricsRegistry()
        self._result(tmp_path).record_metrics(registry)
        snap = registry.snapshot()
        assert snap["lint.findings"] == 1
        assert snap["lint.files"] == 1
        assert snap["lint.baselined"] == 0


class TestCLI:
    def _fixture(self, tmp_path, source):
        pkg = tmp_path / "core"
        pkg.mkdir(exist_ok=True)
        (pkg / "mod.py").write_text(source)
        return str(tmp_path)

    def test_exit_zero_when_clean(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(tmp_path, "x = 1\n")
        assert main(["lint", root]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(
            tmp_path, "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        )
        assert main(["lint", root]) == 1
        assert "R001" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(tmp_path, "x = 1\n")
        assert main(["lint", root, "--rules", "R999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_exit_two_on_missing_explicit_baseline(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(tmp_path, "x = 1\n")
        assert main(["lint", root, "--baseline", "nope.json"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path / "nowhere")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_write_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(
            tmp_path, "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        )
        assert main(["lint", root, "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").exists()
        capsys.readouterr()
        assert main(["lint", root]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_rule_selection(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(
            tmp_path, "import numpy as np\n\ndef f(v):\n    return np.linalg.norm(v)\n"
        )
        assert main(["lint", root, "--rules", "R002"]) == 0
        assert main(["lint", root, "--rules", "R001"]) == 1

    def test_json_format(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(tmp_path, "x = 1\n")
        assert main(["lint", root, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["clean"] is True

    def test_github_format(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(
            tmp_path, "try:\n    x = 1\nexcept:\n    pass\n"
        )
        assert main(["lint", root, "--format", "github"]) == 1
        assert "::error file=" in capsys.readouterr().out

    def test_stats_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._fixture(tmp_path, "x = 1\n")
        assert main(["lint", root, "--stats"]) == 0
        assert "per rule:" in capsys.readouterr().out

    def test_trace_reports_lint_status(self, tmp_path, monkeypatch, capsys):
        from repro.telemetry import load_trace_events, run_tags

        monkeypatch.chdir(tmp_path)
        root = self._fixture(tmp_path, "x = 1\n")
        trace = tmp_path / "trace.json"
        assert main(["lint", root, "--trace", str(trace)]) == 0
        events = load_trace_events(trace)
        assert [e.name for e in events] == ["lint.run"]
        assert run_tags(events) == {"lint_findings": "0"}


class TestRepoIsClean:
    """The repo's own source lints clean against its checked-in baseline."""

    def test_src_lints_clean(self, capsys):
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        assert (repo / "lint-baseline.json").exists()
        code = main(
            [
                "lint",
                str(repo / "src"),
                "--baseline",
                str(repo / "lint-baseline.json"),
                "--no-cache",
            ]
        )
        assert code == 0, capsys.readouterr().out

    def test_baseline_is_empty(self):
        """The ratchet has fully paid down: nothing is grandfathered, and
        the whole-program rules (R100–R103) pass with no baseline help."""
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        assert load_baseline(repo / "lint-baseline.json") == {}
