"""Unit tests for line configurations and per-unit conversion."""

import numpy as np
import pytest

from repro.network.impedance import (
    FEET_PER_MILE,
    IEEE13_CONFIGS,
    LineConfig,
    impedance_base_ohm,
    line_impedance_pu,
)


class TestConfigs:
    def test_all_published_configs_present(self):
        assert set(IEEE13_CONFIGS) == {"601", "602", "603", "604", "605", "606", "607"}

    def test_phase_sets(self):
        assert IEEE13_CONFIGS["603"].phases == (2, 3)
        assert IEEE13_CONFIGS["604"].phases == (1, 3)
        assert IEEE13_CONFIGS["605"].phases == (3,)
        assert IEEE13_CONFIGS["607"].phases == (1,)

    def test_matrices_symmetric(self):
        for cfg in IEEE13_CONFIGS.values():
            np.testing.assert_allclose(cfg.r_per_mile, cfg.r_per_mile.T)
            np.testing.assert_allclose(cfg.x_per_mile, cfg.x_per_mile.T)

    def test_positive_diagonals(self):
        for cfg in IEEE13_CONFIGS.values():
            assert np.all(np.diag(cfg.r_per_mile) > 0)
            assert np.all(np.diag(cfg.x_per_mile) > 0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="impedance must be"):
            LineConfig("bad", (1, 2), np.zeros((3, 3)), np.zeros((3, 3)))

    def test_submatrix(self):
        cfg = IEEE13_CONFIGS["601"]
        r, x = cfg.submatrix((1, 3))
        assert r.shape == (2, 2)
        assert r[0, 1] == pytest.approx(cfg.r_per_mile[0, 2])


class TestPerUnit:
    def test_impedance_base(self):
        assert impedance_base_ohm(4.16, 5.0) == pytest.approx(4.16**2 / 5.0)

    def test_nonpositive_base_rejected(self):
        with pytest.raises(ValueError):
            impedance_base_ohm(0.0, 5.0)

    def test_scaling_linear_in_length(self):
        cfg = IEEE13_CONFIGS["601"]
        r1, _ = line_impedance_pu(cfg, 1000.0, 4.16, 5.0)
        r2, _ = line_impedance_pu(cfg, 2000.0, 4.16, 5.0)
        np.testing.assert_allclose(r2, 2 * r1)

    def test_one_mile_unit_base(self):
        cfg = IEEE13_CONFIGS["605"]
        r, x = line_impedance_pu(cfg, FEET_PER_MILE, 1.0, 1.0)
        np.testing.assert_allclose(r, cfg.r_per_mile)
        np.testing.assert_allclose(x, cfg.x_per_mile)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            line_impedance_pu(IEEE13_CONFIGS["601"], -1.0, 4.16, 5.0)

    def test_phase_subset(self):
        cfg = IEEE13_CONFIGS["601"]
        r, x = line_impedance_pu(cfg, 1000.0, 4.16, 5.0, phases=(2,))
        assert r.shape == (1, 1)
