"""Tests for the device specs, cost model, and simulated-GPU execution."""

import numpy as np
import pytest

from repro.core import ADMMConfig, SolverFreeADMM
from repro.gpu import (
    A100,
    XEON_CORE,
    DeviceSpec,
    dual_update_time,
    global_update_time,
    iteration_times,
    local_update_time_batched,
    local_update_time_threads,
    multi_device_iteration_times,
    run_on_device,
    xeon_node,
)
from repro.parallel import GPU_CLUSTER_COMM


class TestDeviceSpecs:
    def test_a100_faster_than_core(self):
        assert A100.flops_per_s > 100 * XEON_CORE.flops_per_s
        assert A100.mem_bandwidth_bytes_s > 10 * XEON_CORE.mem_bandwidth_bytes_s

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", flops_per_s=0.0, mem_bandwidth_bytes_s=1.0)
        with pytest.raises(ValueError):
            DeviceSpec("bad", flops_per_s=1.0, mem_bandwidth_bytes_s=1.0, sm_count=0)

    def test_xeon_node_aggregates(self):
        node = xeon_node(36)
        assert node.flops_per_s == pytest.approx(36 * XEON_CORE.flops_per_s)
        with pytest.raises(ValueError):
            xeon_node(0)


class TestCostModel:
    def test_monotone_in_problem_size(self):
        small = np.full(10, 8.0)
        large = np.full(1000, 8.0)
        assert local_update_time_batched(A100, large) > local_update_time_batched(
            A100, small
        )
        assert global_update_time(A100, 100, 300) < global_update_time(A100, 10000, 30000)
        assert dual_update_time(A100, 100) < dual_update_time(A100, 100000)

    def test_gpu_beats_cpu_core_on_large_batch(self):
        sizes = np.full(25000, 7.0)
        assert local_update_time_batched(A100, sizes) < local_update_time_batched(
            XEON_CORE, sizes
        )

    def test_kernel_launch_floor(self):
        """Tiny problems on the GPU are launch-latency bound."""
        t = local_update_time_batched(A100, np.array([4.0]))
        assert t >= A100.kernel_launch_s

    def test_thread_scaling_monotone_until_saturation(self):
        """Within the paper's sweep range T in 1..64, more threads never
        hurt; past the component size the benefit saturates.  (Beyond 64
        threads occupancy drops and the model legitimately degrades.)"""
        sizes = np.full(5000, 7.0)
        times = [local_update_time_threads(A100, sizes, t) for t in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a >= b - 1e-15 for a, b in zip(times, times[1:]))
        assert local_update_time_threads(A100, sizes, 32) == pytest.approx(
            local_update_time_threads(A100, sizes, 64)
        )

    def test_thread_count_validation(self):
        with pytest.raises(ValueError):
            local_update_time_threads(A100, np.array([4.0]), 0)

    def test_iteration_times_composition(self, ieee13_dec):
        times = iteration_times(A100, ieee13_dec)
        assert times.total_s == pytest.approx(
            times.global_s + times.local_s + times.dual_s
        )
        assert times.comm_s == 0.0

    def test_multi_device_adds_comm(self, ieee13_dec):
        t1 = multi_device_iteration_times(A100, ieee13_dec, 1, GPU_CLUSTER_COMM)
        t4 = multi_device_iteration_times(A100, ieee13_dec, 4, GPU_CLUSTER_COMM)
        assert t1.comm_s == 0.0
        assert t4.comm_s > 0.0
        assert t4.local_s <= t1.local_s

    def test_multi_device_validation(self, ieee13_dec):
        with pytest.raises(ValueError):
            multi_device_iteration_times(A100, ieee13_dec, 0, GPU_CLUSTER_COMM)


class TestSimulatedRun:
    def test_same_iterates_as_plain_solver(self, ieee13_dec):
        """Fig. 2: CPU and (simulated) GPU runs have identical residuals."""
        cfg = ADMMConfig(max_iter=200)
        plain = SolverFreeADMM(ieee13_dec, cfg).solve()
        gpu = run_on_device(ieee13_dec, A100, cfg)
        np.testing.assert_array_equal(plain.history.pres, gpu.result.history.pres)
        np.testing.assert_array_equal(plain.history.dres, gpu.result.history.dres)
        np.testing.assert_array_equal(plain.x, gpu.result.x)

    def test_modeled_timers(self, ieee13_dec):
        run = run_on_device(ieee13_dec, A100, ADMMConfig(max_iter=50))
        timers = run.modeled_timers()
        assert set(timers) == {"global", "local", "dual"}
        assert run.modeled_total_s == pytest.approx(
            run.per_iteration.total_s * run.result.iterations
        )

    def test_thread_model_run(self, ieee13_dec):
        run = run_on_device(
            ieee13_dec, A100, ADMMConfig(max_iter=10), threads_per_block=16
        )
        assert run.per_iteration.local_s > 0

    def test_threads_with_multi_device_rejected(self, ieee13_dec):
        with pytest.raises(ValueError, match="single-device"):
            run_on_device(
                ieee13_dec, A100, ADMMConfig(max_iter=5),
                threads_per_block=8, n_devices=2,
            )

    def test_multi_device_run_has_comm(self, ieee13_dec):
        run = run_on_device(ieee13_dec, A100, ADMMConfig(max_iter=10), n_devices=4)
        assert "comm" in run.modeled_timers()
