"""Cross-cutting formulation invariants (physics-level property tests).

These tests check aggregate identities that must hold for *any* feeder the
generator can emit — the kind of invariant that catches sign errors in the
balance/flow/load row builders long before an end-to-end solve would.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feeders import SyntheticFeederSpec, build_synthetic_feeder
from repro.formulation import build_centralized_lp
from repro.reference import solve_reference


def _aggregate_balance(lp, x):
    """Sum all real balance rows: total line-withdrawals + total pb +
    shunt - total generation = 0 at any feasible point."""
    total = 0.0
    for row in lp.rows:
        if row.tag.startswith("balance-p:"):
            total += sum(c * x[lp.var_index.index(k)] for k, c in row.coeffs.items())
            total -= row.rhs
    return total


class TestAggregateIdentities:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_flow_pairs_cancel_in_aggregate(self, seed):
        """Summing every real balance row over the whole feeder leaves
        generation = withdrawals + shunts: the same (pf + pt) pair appears
        once at each terminal, so per-line contributions reduce to the loss
        rows' shunt terms.  Verified at the centralized optimum."""
        net = build_synthetic_feeder(
            SyntheticFeederSpec(n_buses=14, seed=seed, load_density=0.9)
        )
        lp = build_centralized_lp(net)
        ref = solve_reference(lp)
        assert abs(_aggregate_balance(lp, ref.x)) < 1e-7

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_generation_covers_constant_power_fraction(self, seed):
        """At the optimum the substation serves roughly the feeder's
        reference demand (the ZIP linearization shifts it by the voltage
        deviation, bounded by the voltage band)."""
        net = build_synthetic_feeder(
            SyntheticFeederSpec(n_buses=14, seed=seed, load_density=0.9)
        )
        lp = build_centralized_lp(net)
        ref = solve_reference(lp)
        demand = net.total_load_p
        if demand > 1e-6:
            assert 0.5 * demand < ref.objective < 1.6 * demand

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_load_variables_match_zip_at_solution(self, seed):
        """pd variables at the optimum equal the ZIP law evaluated at the
        bus voltage."""
        net = build_synthetic_feeder(
            SyntheticFeederSpec(n_buses=12, seed=seed, load_density=0.9)
        )
        lp = build_centralized_lp(net)
        ref = solve_reference(lp)
        vi = lp.var_index
        from repro.network.phases import DELTA_BRANCH_PHASES

        for load in net.loads.values():
            for j, phi in enumerate(load.phases):
                w_phase = DELTA_BRANCH_PHASES[phi][0] if load.is_delta else phi
                w = ref.x[vi.index(("w", load.bus, w_phase))]
                expected = (
                    load.p_ref[j] * load.alpha[j] / 2.0 * (w - 1.0) + load.p_ref[j]
                )
                pd = ref.x[vi.index(("pd", load.name, phi))]
                assert pd == pytest.approx(expected, abs=1e-7)


class TestDecompositionInvariantsAcrossSeeds:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_stack_equivalence_random_feeders(self, seed):
        from repro.decomposition import decompose

        net = build_synthetic_feeder(SyntheticFeederSpec(n_buses=12, seed=seed))
        lp = build_centralized_lp(net)
        dec = decompose(lp)
        a_stack, b_stack = dec.stacked_raw_system()
        d1 = np.hstack([a_stack.toarray(), b_stack[:, None]])
        d2 = np.hstack([lp.a_matrix.toarray(), lp.b_vector[:, None]])
        np.testing.assert_allclose(
            d1[np.lexsort(d1.T)], d2[np.lexsort(d2.T)], atol=1e-12
        )

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_reference_satisfies_every_local_system(self, seed):
        from repro.decomposition import decompose

        net = build_synthetic_feeder(SyntheticFeederSpec(n_buses=12, seed=seed))
        lp = build_centralized_lp(net)
        ref = solve_reference(lp)
        dec = decompose(lp)
        for comp in dec.components:
            np.testing.assert_allclose(
                comp.a @ ref.x[comp.global_cols], comp.b, atol=1e-6
            )
