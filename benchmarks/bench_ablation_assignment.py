"""Ablation C: component-to-rank assignment strategy (extension).

The paper distributes components "nearly evenly" across ranks.  Because
component costs are skewed (leaf components are cheap, trunk-bus components
expensive), a cost-aware longest-processing-time assignment tightens the
per-iteration makespan.  This ablation quantifies that against the paper's
even split across cluster sizes.
"""

from _common import format_table, get_dec, get_local_costs, report

from repro.parallel import CPU_CLUSTER_COMM, SimulatedCluster


def test_ablation_assignment_report(benchmark):
    name = "ieee123"
    dec = get_dec(name)
    costs, _ = get_local_costs(name)
    rows = []
    gains = []
    for n in (2, 4, 8, 16, 32):
        even = SimulatedCluster(dec, costs, n, CPU_CLUSTER_COMM, "even").local_update_timing()
        greedy = SimulatedCluster(dec, costs, n, CPU_CLUSTER_COMM, "greedy").local_update_timing()
        gain = even.compute_s / greedy.compute_s
        gains.append(gain)
        rows.append(
            [n, f"{even.compute_s * 1e6:.2f}", f"{greedy.compute_s * 1e6:.2f}",
             f"{gain:.2f}x"]
        )
    text = format_table(
        ["#CPUs", "even compute [us]", "greedy compute [us]", "gain"],
        rows,
        title=f"Ablation C ({name}): rank assignment strategy (per-iteration makespan)",
    )
    report("ablation_assignment", text)

    # Greedy never loses (it can tie when everything is uniform).
    assert all(g >= 0.999 for g in gains)

    benchmark(
        lambda: SimulatedCluster(dec, costs, 16, CPU_CLUSTER_COMM, "greedy").local_update_timing()
    )
