"""Fleet horizontal scaling: aggregate throughput at 1, 2 and 4 workers.

Serves one mixed-topology workload (ieee13 plus seven synthetic feeders,
round-robin interleaved — the fleet's natural traffic shape) through
process-mode fleets of 1, 2 and 4 workers and writes the scoreboard to
``BENCH_serving_scale.json`` at the repository root.  A self-healing
section (sim fleet, virtual clock, bit-identical replay) measures the
supervisor's MTTR and the warm-hit rate before/during/after a worker
outage with cache re-warming, plus a full seeded chaos-soak report.

Throughput accounting
---------------------
This container exposes a single CPU core, so 4 worker processes cannot
show wall-clock speedup here — they time-slice one core.  The benchmark
therefore follows the repo's established virtual-clock methodology (the
simulated MPI ranks, the modeled GPU track): each worker measures its own
*CPU-busy* seconds with ``time.process_time()`` — immune to core
contention, because a descheduled process accumulates no process time —
and the fleet's aggregate throughput is computed against the **critical
path**, ``max`` over workers of busy seconds, which is the elapsed time
of the same run on one-core-per-worker hardware.  The measured wall clock
is reported alongside (``throughput_rps_wall``), and ``cpu_count``
records the machine so nobody mistakes the modeled number for a local
wall-clock measurement.

Work conservation makes the comparison honest: ``warm_start=False`` (no
history effects), ``max_batch=1`` (no batch-shape effects), and a feeder
set chosen so consistent-hash routing splits topologies exactly 4/4 at
two workers and 2/2/2/2 at four — every fleet size performs the identical
set of cold solves, only the placement differs.  The per-request
objectives are asserted bit-identical across fleet sizes.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

from _common import report

from repro.fleet import (
    FleetConfig,
    FleetFrontend,
    FleetSupervisor,
    HashRing,
    SupervisorConfig,
    generate_mixed_scenarios,
    run_chaos_soak,
)
from repro.resilience import FaultPlan, WorkerCrash
from repro.utils import format_table

#: Mixed ieee13/synthetic feeder set whose topology keys land exactly
#: balanced on the fleet's hash ring — 4/4 over {w0,w1} and 2/2/2/2 over
#: {w0..w3} — *and* whose per-shard cold-solve CPU cost balances to
#: within ~1% at both fleet sizes (count balance alone is not enough:
#: topologies converge at different rates, and an expensive pair landing
#: on one shard caps the critical-path speedup).  Pinned by sha256
#: routing; test_fleet_routing.py guards the hash function against drift.
FEEDERS = [
    "ieee13",
    "synthetic:20:0",
    "synthetic:20:1",
    "synthetic:20:4",
    "synthetic:20:8",
    "synthetic:20:11",
    "synthetic:20:12",
    "synthetic:20:17",
]
REQUESTS_PER_TOPOLOGY = 3
SEED = 11
WORKER_COUNTS = (1, 2, 4)
OUTPUT = Path(__file__).parent.parent / "BENCH_serving_scale.json"


def _shard_balance(n_workers: int) -> dict[str, int]:
    ring = HashRing([f"w{i}" for i in range(n_workers)])
    counts: dict[str, int] = {f"w{i}": 0 for i in range(n_workers)}
    for feeder in FEEDERS:
        from repro.serve import OPFRequest

        counts[ring.route(OPFRequest(request_id="x", feeder=feeder).topology_key())] += 1
    return counts


def _run_fleet(requests, n_workers: int) -> dict:
    config = FleetConfig(
        n_workers=n_workers,
        mode="process",
        warm_start=False,
        max_batch=1,
        response_timeout_s=600.0,
    )
    t0 = time.perf_counter()
    with FleetFrontend(config) as fleet:
        responses = fleet.serve(requests)
        snap = fleet.snapshot()
    wall_s = time.perf_counter() - t0
    busy = {
        wid: ws.get("busy_cpu_s", 0.0) for wid, ws in snap["workers"].items()
    }
    served = {wid: ws.get("served", 0) for wid, ws in snap["workers"].items()}
    makespan_s = max(busy.values())
    statuses: dict[str, int] = {}
    for r in responses:
        statuses[r.status] = statuses.get(r.status, 0) + 1
    return {
        "n_workers": n_workers,
        "busy_s_per_worker": {k: round(v, 4) for k, v in sorted(busy.items())},
        "served_per_worker": dict(sorted(served.items())),
        "busy_total_s": round(sum(busy.values()), 4),
        "makespan_s": round(makespan_s, 4),
        "throughput_rps": round(len(requests) / makespan_s, 3),
        "wall_s": round(wall_s, 3),
        "throughput_rps_wall": round(len(requests) / wall_s, 3),
        "statuses": statuses,
        "objectives": {r.request_id: r.objective for r in responses},
    }


def _run_self_healing() -> dict:
    """Warm-hit rate before / during / after a worker outage, plus MTTR.

    Runs on the deterministic sim fleet (virtual clock) so every number
    here replays bit-identically: a two-worker fleet serves repeats of
    one topology owned by w1; w1 is killed mid-stream, the failover wave
    lands cold on the survivor, and the supervisor restarts + re-warms
    w1 from the survivor's cache before the final wave.
    """
    feeders = ["ieee13"]  # routes to w1 on the two-worker ring
    plan = FaultPlan(seed=SEED, faults=(WorkerCrash(worker="w1", after_served=8),))
    fleet = FleetFrontend(
        FleetConfig(n_workers=2, max_batch=2, warm_start=True), fault_plan=plan
    )
    sup = FleetSupervisor(
        fleet,
        SupervisorConfig(miss_threshold=2, restart_base_delay_s=0.05, seed=SEED),
    )

    def wave() -> float:
        reqs = generate_mixed_scenarios(feeders, 4, seed=SEED)
        resp = sup.serve(reqs)
        assert all(r.status == "converged" for r in resp)
        return sum(1 for r in resp if r.warm_started) / len(resp)

    wave()  # cold warm-up: populates w1's cache
    warm_hit_before = wave()  # steady state: every repeat warm-starts
    warm_hit_during = wave()  # w1 dies; failover lands cold on w0
    sup.stabilize()  # restart + re-warm w1 from the survivor
    warm_hit_after = wave()  # back on w1, warm state recovered
    mttr = sorted(
        float(v) for v in fleet.metrics.histogram("fleet.restart.mttr_s").values()
    )
    capacity = sup.capacity()
    fleet.close()

    # Seeded kill/restart storm on a 4-worker fleet: exactly-once and
    # bit-identical vs the fault-free twin, plus its own MTTR samples.
    soak = run_chaos_soak().as_dict()
    return {
        "outage": {
            "warm_hit_before": warm_hit_before,
            "warm_hit_during": warm_hit_during,
            "warm_hit_after": warm_hit_after,
            "mttr_virtual_s": mttr,
            "capacity": capacity,
        },
        "chaos_soak": soak,
    }


def run() -> dict:
    n_requests = REQUESTS_PER_TOPOLOGY * len(FEEDERS)
    requests = generate_mixed_scenarios(FEEDERS, n_requests, seed=SEED)
    fleets = {str(n): _run_fleet(requests, n) for n in WORKER_COUNTS}

    base = fleets["1"]
    stats = {
        "instance": {
            "feeders": FEEDERS,
            "n_requests": n_requests,
            "seed": SEED,
            "max_batch": 1,
            "warm_start": False,
            "mode": "process",
        },
        "cpu_count": multiprocessing.cpu_count(),
        "throughput_model": (
            "critical-path: per-worker CPU-busy seconds via time.process_time() "
            "inside each worker process; aggregate throughput = n_requests / "
            "max(worker busy).  Contention-immune, so it measures horizontal "
            "scaling even when the host has fewer cores than workers; "
            "throughput_rps_wall is the same run's measured wall clock on "
            "cpu_count cores."
        ),
        "shard_balance": {str(n): _shard_balance(n) for n in WORKER_COUNTS},
        "fleets": {
            k: {a: b for a, b in v.items() if a != "objectives"}
            for k, v in fleets.items()
        },
        "speedup_2w": round(base["makespan_s"] / fleets["2"]["makespan_s"], 3),
        "speedup_4w": round(base["makespan_s"] / fleets["4"]["makespan_s"], 3),
        "self_healing": _run_self_healing(),
    }
    # Placement invariance: every fleet size produced identical results.
    for n in ("2", "4"):
        assert fleets[n]["objectives"] == base["objectives"], (
            f"{n}-worker fleet drifted from the 1-worker results"
        )
    OUTPUT.write_text(json.dumps(stats, indent=2) + "\n")

    rows = [
        [
            f["n_workers"],
            f["busy_total_s"],
            f["makespan_s"],
            f["throughput_rps"],
            f["wall_s"],
        ]
        for f in (fleets[str(n)] for n in WORKER_COUNTS)
    ]
    report(
        "bench_serving_scale",
        format_table(
            ["workers", "busy total s", "makespan s", "rps (critical path)", "wall s"],
            rows,
            title=(
                f"Fleet scaling — {n_requests} mixed-topology requests "
                f"(speedup {stats['speedup_2w']:.2f}x @ 2w, "
                f"{stats['speedup_4w']:.2f}x @ 4w; host has "
                f"{stats['cpu_count']} core(s))"
            ),
        ),
    )
    heal = stats["self_healing"]["outage"]
    soak = stats["self_healing"]["chaos_soak"]
    report(
        "bench_serving_scale.self_healing",
        format_table(
            ["phase", "warm-hit rate"],
            [
                ["before outage", heal["warm_hit_before"]],
                ["during outage", heal["warm_hit_during"]],
                ["after re-warm", heal["warm_hit_after"]],
            ],
            title=(
                f"Self-healing — MTTR {heal['mttr_virtual_s']} virtual s; "
                f"chaos soak: {soak['deaths']} deaths, "
                f"{soak['restarts']} restarts, ok={soak['ok']}"
            ),
        ),
    )
    return stats


def test_serving_scale():
    stats = run()
    for n, fleet in stats["fleets"].items():
        assert fleet["statuses"] == {"converged": stats["instance"]["n_requests"]}, n
    # Near-linear horizontal scaling on the critical path.
    assert stats["speedup_2w"] >= 1.6
    assert stats["speedup_4w"] >= 3.0
    # The chosen feeder set keeps every shard loaded.
    assert all(v > 0 for v in stats["shard_balance"]["4"].values())
    # Self-healing: re-warming restores the steady-state warm-hit rate
    # the outage destroyed, and the chaos soak's invariants all held.
    heal = stats["self_healing"]["outage"]
    assert heal["warm_hit_before"] == 1.0
    assert heal["warm_hit_during"] < heal["warm_hit_before"]
    assert heal["warm_hit_after"] == heal["warm_hit_before"]
    assert heal["mttr_virtual_s"] and heal["capacity"]["recovered"]
    assert stats["self_healing"]["chaos_soak"]["ok"]
    assert OUTPUT.exists()


if __name__ == "__main__":
    stats = run()
    print(f"wrote {OUTPUT}")
