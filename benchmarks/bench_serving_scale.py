"""Fleet horizontal scaling: aggregate throughput at 1, 2 and 4 workers.

Serves one mixed-topology workload (ieee13 plus seven synthetic feeders,
round-robin interleaved — the fleet's natural traffic shape) through
process-mode fleets of 1, 2 and 4 workers and writes the scoreboard to
``BENCH_serving_scale.json`` at the repository root.

Throughput accounting
---------------------
This container exposes a single CPU core, so 4 worker processes cannot
show wall-clock speedup here — they time-slice one core.  The benchmark
therefore follows the repo's established virtual-clock methodology (the
simulated MPI ranks, the modeled GPU track): each worker measures its own
*CPU-busy* seconds with ``time.process_time()`` — immune to core
contention, because a descheduled process accumulates no process time —
and the fleet's aggregate throughput is computed against the **critical
path**, ``max`` over workers of busy seconds, which is the elapsed time
of the same run on one-core-per-worker hardware.  The measured wall clock
is reported alongside (``throughput_rps_wall``), and ``cpu_count``
records the machine so nobody mistakes the modeled number for a local
wall-clock measurement.

Work conservation makes the comparison honest: ``warm_start=False`` (no
history effects), ``max_batch=1`` (no batch-shape effects), and a feeder
set chosen so consistent-hash routing splits topologies exactly 4/4 at
two workers and 2/2/2/2 at four — every fleet size performs the identical
set of cold solves, only the placement differs.  The per-request
objectives are asserted bit-identical across fleet sizes.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

from _common import report

from repro.fleet import (
    FleetConfig,
    FleetFrontend,
    HashRing,
    generate_mixed_scenarios,
)
from repro.utils import format_table

#: Mixed ieee13/synthetic feeder set whose topology keys land exactly
#: balanced on the fleet's hash ring — 4/4 over {w0,w1} and 2/2/2/2 over
#: {w0..w3} — *and* whose per-shard cold-solve CPU cost balances to
#: within ~1% at both fleet sizes (count balance alone is not enough:
#: topologies converge at different rates, and an expensive pair landing
#: on one shard caps the critical-path speedup).  Pinned by sha256
#: routing; test_fleet_routing.py guards the hash function against drift.
FEEDERS = [
    "ieee13",
    "synthetic:20:0",
    "synthetic:20:1",
    "synthetic:20:4",
    "synthetic:20:8",
    "synthetic:20:11",
    "synthetic:20:12",
    "synthetic:20:17",
]
REQUESTS_PER_TOPOLOGY = 3
SEED = 11
WORKER_COUNTS = (1, 2, 4)
OUTPUT = Path(__file__).parent.parent / "BENCH_serving_scale.json"


def _shard_balance(n_workers: int) -> dict[str, int]:
    ring = HashRing([f"w{i}" for i in range(n_workers)])
    counts: dict[str, int] = {f"w{i}": 0 for i in range(n_workers)}
    for feeder in FEEDERS:
        from repro.serve import OPFRequest

        counts[ring.route(OPFRequest(request_id="x", feeder=feeder).topology_key())] += 1
    return counts


def _run_fleet(requests, n_workers: int) -> dict:
    config = FleetConfig(
        n_workers=n_workers,
        mode="process",
        warm_start=False,
        max_batch=1,
        response_timeout_s=600.0,
    )
    t0 = time.perf_counter()
    with FleetFrontend(config) as fleet:
        responses = fleet.serve(requests)
        snap = fleet.snapshot()
    wall_s = time.perf_counter() - t0
    busy = {
        wid: ws.get("busy_cpu_s", 0.0) for wid, ws in snap["workers"].items()
    }
    served = {wid: ws.get("served", 0) for wid, ws in snap["workers"].items()}
    makespan_s = max(busy.values())
    statuses: dict[str, int] = {}
    for r in responses:
        statuses[r.status] = statuses.get(r.status, 0) + 1
    return {
        "n_workers": n_workers,
        "busy_s_per_worker": {k: round(v, 4) for k, v in sorted(busy.items())},
        "served_per_worker": dict(sorted(served.items())),
        "busy_total_s": round(sum(busy.values()), 4),
        "makespan_s": round(makespan_s, 4),
        "throughput_rps": round(len(requests) / makespan_s, 3),
        "wall_s": round(wall_s, 3),
        "throughput_rps_wall": round(len(requests) / wall_s, 3),
        "statuses": statuses,
        "objectives": {r.request_id: r.objective for r in responses},
    }


def run() -> dict:
    n_requests = REQUESTS_PER_TOPOLOGY * len(FEEDERS)
    requests = generate_mixed_scenarios(FEEDERS, n_requests, seed=SEED)
    fleets = {str(n): _run_fleet(requests, n) for n in WORKER_COUNTS}

    base = fleets["1"]
    stats = {
        "instance": {
            "feeders": FEEDERS,
            "n_requests": n_requests,
            "seed": SEED,
            "max_batch": 1,
            "warm_start": False,
            "mode": "process",
        },
        "cpu_count": multiprocessing.cpu_count(),
        "throughput_model": (
            "critical-path: per-worker CPU-busy seconds via time.process_time() "
            "inside each worker process; aggregate throughput = n_requests / "
            "max(worker busy).  Contention-immune, so it measures horizontal "
            "scaling even when the host has fewer cores than workers; "
            "throughput_rps_wall is the same run's measured wall clock on "
            "cpu_count cores."
        ),
        "shard_balance": {str(n): _shard_balance(n) for n in WORKER_COUNTS},
        "fleets": {
            k: {a: b for a, b in v.items() if a != "objectives"}
            for k, v in fleets.items()
        },
        "speedup_2w": round(base["makespan_s"] / fleets["2"]["makespan_s"], 3),
        "speedup_4w": round(base["makespan_s"] / fleets["4"]["makespan_s"], 3),
    }
    # Placement invariance: every fleet size produced identical results.
    for n in ("2", "4"):
        assert fleets[n]["objectives"] == base["objectives"], (
            f"{n}-worker fleet drifted from the 1-worker results"
        )
    OUTPUT.write_text(json.dumps(stats, indent=2) + "\n")

    rows = [
        [
            f["n_workers"],
            f["busy_total_s"],
            f["makespan_s"],
            f["throughput_rps"],
            f["wall_s"],
        ]
        for f in (fleets[str(n)] for n in WORKER_COUNTS)
    ]
    report(
        "bench_serving_scale",
        format_table(
            ["workers", "busy total s", "makespan s", "rps (critical path)", "wall s"],
            rows,
            title=(
                f"Fleet scaling — {n_requests} mixed-topology requests "
                f"(speedup {stats['speedup_2w']:.2f}x @ 2w, "
                f"{stats['speedup_4w']:.2f}x @ 4w; host has "
                f"{stats['cpu_count']} core(s))"
            ),
        ),
    )
    return stats


def test_serving_scale():
    stats = run()
    for n, fleet in stats["fleets"].items():
        assert fleet["statuses"] == {"converged": stats["instance"]["n_requests"]}, n
    # Near-linear horizontal scaling on the critical path.
    assert stats["speedup_2w"] >= 1.6
    assert stats["speedup_4w"] >= 3.0
    # The chosen feeder set keeps every shard loaded.
    assert all(v > 0 for v in stats["shard_balance"]["4"].values())
    assert OUTPUT.exists()


if __name__ == "__main__":
    stats = run()
    print(f"wrote {OUTPUT}")
