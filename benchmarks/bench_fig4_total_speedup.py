"""Fig. 4: total time to convergence, one GPU vs 16 CPUs (log scale).

Total time = per-iteration time x iterations-to-convergence; iterations are
identical on both platforms (Fig. 2), so the figure is the per-iteration
ratio scaled by the instance's run length.  The paper's headline: about a
fifty-fold gain on the 8500-bus instance, growing with instance size.
"""

from _common import (
    INSTANCES,
    PAPER,
    format_table,
    get_dec,
    get_local_costs,
    get_solution,
    report,
)

from repro.gpu import A100, iteration_times
from repro.parallel import CPU_CLUSTER_COMM, SimulatedCluster


def test_fig4_report(benchmark):
    rows = []
    speedups = {}
    for name in INSTANCES:
        dec = get_dec(name)
        sol = get_solution(name)
        iters = sol.iterations
        g = sol.timers["global"] / iters
        d = sol.timers["dual"] / iters

        cpu16 = SimulatedCluster(dec, get_local_costs(name)[0], 16, CPU_CLUSTER_COMM)
        t_cpu = cpu16.iteration_time(g, d) * iters
        gpu = iteration_times(A100, dec)
        t_gpu = gpu.total_s * iters
        speedups[name] = t_cpu / t_gpu
        rows.append(
            [
                name,
                iters,
                f"{t_cpu:.2f}",
                f"{t_gpu:.3f}",
                f"{speedups[name]:.1f}x",
                f"~{PAPER['fig4_speedup'][name]:.0f}x",
            ]
        )
    text = format_table(
        ["instance", "iterations", "16 CPUs [s]", "1 GPU [s]", "speedup", "paper"],
        rows,
        title="Fig. 4: total time to convergence, 1 GPU vs 16 CPUs",
    )
    report("fig4_total_speedup", text)

    # Shape claims: the GPU wins everywhere and the gap grows with size.
    assert all(s > 1.0 for s in speedups.values())
    assert speedups["ieee8500"] > speedups["ieee13"]

    dec = get_dec("ieee13")
    benchmark(lambda: iteration_times(A100, dec))
