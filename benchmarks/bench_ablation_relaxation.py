"""Ablation D: over-relaxation (extension).

The paper keeps plain ADMM and cites acceleration as future work; classical
over-relaxation (alpha in (1, 2)) is the textbook lever.  On these LPs with
the paper's *relative* stop rule the effect is a tradeoff: larger alpha
tightens the final objective gap but takes more iterations to certify —
worth knowing before flipping the knob in production.
"""

from _common import format_table, get_dec, get_ref, report

from repro.core import ADMMConfig, SolverFreeADMM


def test_ablation_relaxation_report(benchmark):
    dec = get_dec("ieee13")
    ref = get_ref("ieee13")
    rows = []
    gaps = {}
    iters = {}
    for alpha in (0.8, 1.0, 1.3, 1.6, 1.8):
        cfg = ADMMConfig(max_iter=150_000, relaxation=alpha, record_history=False)
        res = SolverFreeADMM(dec, cfg).solve()
        gaps[alpha] = ref.compare_objective(res.objective)
        iters[alpha] = res.iterations
        rows.append(
            [alpha, res.iterations, "yes" if res.converged else "no",
             f"{gaps[alpha]:.2e}"]
        )
    text = format_table(
        ["alpha", "iterations", "converged", "objective gap"],
        rows,
        title="Ablation D (ieee13): over-relaxation",
    )
    report("ablation_relaxation", text)

    # alpha = 1 (the paper's algorithm) must be sound; every setting
    # converges; stronger relaxation does not blow the gap up.
    assert all(g < 5e-2 for g in gaps.values())
    assert gaps[1.8] <= gaps[1.0] * 10

    cfg = ADMMConfig(max_iter=200, relaxation=1.6, record_history=False)
    benchmark(lambda: SolverFreeADMM(dec, cfg).solve())
