"""Ablation G: column equilibration (a negative result, reported honestly).

Distribution OPF columns span ~4 orders of magnitude, so one might expect
geometric-mean equilibration to help ADMM.  Measured: it does not — the
rescaled geometry *slows* convergence to a quality solution and shifts
where the relative criterion (16) fires.  The per-unit system the paper
formulates in is already the right scaling for these problems; this bench
pins that finding so regressions (or future scaling ideas) are measured
against it.
"""

from _common import format_table, get_dec, get_lp, get_ref, get_solution, report

from repro.core import ADMMConfig, SolverFreeADMM
from repro.decomposition import decompose
from repro.formulation.scaling import column_scales, scale_lp

BUDGET = 100_000


def test_ablation_scaling_report(benchmark):
    name = "ieee13"
    lp = get_lp(name)
    ref = get_ref(name)
    base = get_solution(name)
    rows = [
        [
            "per-unit (paper)",
            base.iterations,
            "yes" if base.converged else "no",
            f"{ref.compare_objective(base.objective):.2e}",
            f"{lp.equality_violation(base.x):.1e}",
        ]
    ]
    results = {}
    for clip in (3.0, 10.0, 1e4):
        scaled = scale_lp(lp, column_scales(lp, clip=clip))
        dec = decompose(scaled.lp)
        res = SolverFreeADMM(
            dec, ADMMConfig(max_iter=BUDGET, record_history=False)
        ).solve()
        x = scaled.unscale(res.x)
        gap = ref.compare_objective(float(lp.cost @ x))
        results[clip] = gap
        rows.append(
            [
                f"equilibrated clip={clip:g}",
                res.iterations,
                "yes" if res.converged else "no",
                f"{gap:.2e}",
                f"{lp.equality_violation(x):.1e}",
            ]
        )
    text = format_table(
        ["variant", "iterations", "converged", "objective gap", "eq viol"],
        rows,
        title="Ablation G (ieee13): column equilibration (negative result)",
    )
    text += (
        "\nFinding: the per-unit formulation is already well scaled for ADMM; "
        "naive column equilibration degrades solution quality under the "
        "relative stop rule."
    )
    report("ablation_scaling", text)

    base_gap = ref.compare_objective(base.objective)
    # The negative result itself: no equilibrated variant beats per-unit.
    assert all(gap >= base_gap * 0.5 for gap in results.values())

    dec13 = get_dec(name)
    benchmark(
        lambda: SolverFreeADMM(dec13, ADMMConfig(max_iter=100, record_history=False)).solve()
    )
