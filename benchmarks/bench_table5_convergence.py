"""Table V: total time and iterations to convergence, ours vs benchmark.

Methodology (see EXPERIMENTS.md): iteration counts come from real runs of
each algorithm; wall times are *simulated-cluster* times — measured
per-component local-update costs replayed on the paper's rank counts (ours
on 16 CPUs; benchmark on 32/128/512) plus measured aggregator-side
global/dual costs.  The benchmark's iteration count is only run to
convergence where that is affordable on this machine (the 13-bus instance;
all instances under ``REPRO_BENCH_FULL=1``); elsewhere the solver-free
count is used as a stand-in, which the paper's own Table V justifies
(comparable counts, benchmark usually needing somewhat more).

The claims under test: the solver-free algorithm is faster on *every*
instance despite using far fewer CPUs, and the gap widens with size.
"""

from _common import (
    FULL_MODE,
    INSTANCES,
    PAPER,
    format_table,
    get_dec,
    get_local_costs,
    get_solution,
    report,
)

from repro.core import ADMMConfig, BenchmarkADMM
from repro.parallel import CPU_CLUSTER_COMM, SimulatedCluster

#: Rank counts used in the paper's Table V.
OUR_CPUS = {"ieee13": 16, "ieee123": 16, "ieee8500": 16}
BENCH_CPUS = {"ieee13": 32, "ieee123": 128, "ieee8500": 512}


def aggregator_times_per_iter(name: str) -> tuple[float, float]:
    sol = get_solution(name)
    return (
        sol.timers["global"] / sol.iterations,
        sol.timers["dual"] / sol.iterations,
    )


def benchmark_iterations(name: str, ours_iterations: int) -> tuple[int, bool]:
    """(iterations, measured?) for the benchmark ADMM."""
    if name == "ieee13" or FULL_MODE:
        dec = get_dec(name)
        res = BenchmarkADMM(
            dec,
            ADMMConfig(max_iter=500_000, record_history=False),
            local_mode="projection",
        ).solve()
        return res.iterations, True
    return ours_iterations, False


def simulated_total_time(name, costs, n_cpus, iterations):
    dec = get_dec(name)
    g, d = aggregator_times_per_iter(name)
    cluster = SimulatedCluster(dec, costs, n_cpus, CPU_CLUSTER_COMM)
    return cluster.iteration_time(g, d) * iterations


def test_table5_report(benchmark):
    rows = []
    ratios = {}
    for name in INSTANCES:
        ours_costs, bench_costs = get_local_costs(name)
        sol = get_solution(name)
        assert sol.converged, f"{name}: solver-free run did not converge"
        t_ours = simulated_total_time(name, ours_costs, OUR_CPUS[name], sol.iterations)
        bench_iters, measured = benchmark_iterations(name, sol.iterations)
        t_bench = simulated_total_time(
            name, bench_costs, BENCH_CPUS[name], bench_iters
        )
        p_ours = PAPER["table5"][name]["ours"]
        p_bench = PAPER["table5"][name]["benchmark"]
        rows.append(
            [name, "ours", OUR_CPUS[name], f"{t_ours:.2f}", sol.iterations,
             p_ours[1], p_ours[2]]
        )
        rows.append(
            [name, "benchmark", BENCH_CPUS[name], f"{t_bench:.2f}",
             f"{bench_iters}{'' if measured else '~'}", p_bench[1], p_bench[2]]
        )
        ratios[name] = t_bench / t_ours
    text = format_table(
        ["instance", "algorithm", "#CPUs", "time [s]", "iterations",
         "paper time", "paper iters"],
        rows,
        title=(
            "Table V: time and iterations to convergence "
            "(~: iteration count imputed from ours; times are simulated-cluster)"
        ),
    )
    text += "\nspeedup ours vs benchmark: " + ", ".join(
        f"{k}: {v:.1f}x" for k, v in ratios.items()
    )
    report("table5_convergence", text)

    # Shape claim: ours wins on every instance despite far fewer CPUs.  The
    # paper's widening-with-size trend additionally needs the full-scale
    # 8500-bus instance (quick mode downsizes it, which compresses the
    # baseline's compute share relative to its 512-rank comm cost).
    assert all(r > 1.0 for r in ratios.values())
    if FULL_MODE:
        assert ratios["ieee8500"] > ratios["ieee13"]

    # pytest-benchmark target: one full solver-free iteration on IEEE13.
    from repro.core import SolverFreeADMM

    dec = get_dec("ieee13")
    solver = SolverFreeADMM(dec)
    x, z, lam = solver.initial_state()

    def one_iteration():
        xg = solver.global_update(z, lam, 100.0)
        bx = xg[solver.gcols]
        z2 = solver.local_update(bx, lam, 100.0)
        solver.dual_update(lam, bx, z2, 100.0)

    benchmark(one_iteration)
