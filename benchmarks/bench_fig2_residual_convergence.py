"""Fig. 2: primal/dual residual trajectories — CPU vs GPU execution.

The paper's point: GPU acceleration changes *where* the iterations run, not
*what* they compute, so the residual traces coincide and so does the
iteration count.  Here the CPU path is the plain solver and the GPU path is
the simulated device run (same batched kernels + modeled timing); the
histories must be bit-identical.
"""

import numpy as np
from _common import format_table, get_dec, get_solution, report

from repro.core import ADMMConfig, SolverFreeADMM
from repro.gpu import A100, run_on_device


def test_fig2_report(benchmark):
    dec = get_dec("ieee13")
    cpu = get_solution("ieee13")
    gpu = run_on_device(
        dec, A100, ADMMConfig(max_iter=cpu.iterations, record_history=True)
    )

    h_cpu = cpu.history.arrays()
    h_gpu = gpu.result.history.arrays()
    np.testing.assert_array_equal(h_cpu["pres"], h_gpu["pres"])
    np.testing.assert_array_equal(h_cpu["dres"], h_gpu["dres"])
    assert cpu.iterations == gpu.result.iterations

    # Print a log-sampled trace of both residuals.
    n = cpu.iterations
    samples = sorted({min(n, int(round(10**e))) for e in np.linspace(0, np.log10(n), 12)})
    rows = [
        [
            it,
            f"{h_cpu['pres'][it - 1]:.3e}",
            f"{h_cpu['dres'][it - 1]:.3e}",
            f"{h_cpu['eps_prim'][it - 1]:.3e}",
            f"{h_cpu['eps_dual'][it - 1]:.3e}",
        ]
        for it in samples
    ]
    text = format_table(
        ["iteration", "pres", "dres", "eps_prim", "eps_dual"],
        rows,
        title=(
            "Fig. 2 (ieee13): residual trace (CPU and simulated-GPU traces "
            "verified identical)"
        ),
    )
    report("fig2_residual_convergence", text)

    # Residuals decay by orders of magnitude over the run.
    assert h_cpu["pres"][-1] < 1e-2 * np.max(h_cpu["pres"])

    benchmark(
        lambda: SolverFreeADMM(dec, ADMMConfig(max_iter=100, record_history=True)).solve()
    )
