"""Telemetry overhead: tracing must be ~free when off and cheap when on.

The whole point of threading one observability layer through the ADMM hot
loop is that it can stay enabled in production serving.  This benchmark
runs a fixed iteration budget of the solver-free ADMM on the 123-bus
instance under three configurations:

* **baseline** — no tracer argument (the shared ``NULL_TRACER``);
* **disabled** — an explicitly constructed ``Tracer(enabled=False)``,
  i.e. the cost of the ``if tracer:`` guards (~0%);
* **enabled** — full span capture of every global/local/dual/residual
  phase (target: <5% over baseline).

Each configuration is timed best-of-``REPEATS`` to suppress scheduler
noise; the iterate sequence is identical in all three, so only the
instrumentation differs.
"""

import time

from _common import format_table, get_dec, report

from repro.core import ADMMConfig, SolverFreeADMM
from repro.telemetry import Tracer

INSTANCE = "ieee123"
ITERATIONS = 600
REPEATS = 9

#: Gate generously above the 5% target: best-of-5 on a shared CI runner
#: still jitters by a few percent, and the report shows the real number.
FAIL_THRESHOLD = 0.15


def _one_solve(dec, cfg, tracer) -> tuple[float, int]:
    solver = SolverFreeADMM(dec, cfg, tracer=tracer)
    if tracer is not None:
        tracer.clear()
    t0 = time.perf_counter()
    solver.solve()
    elapsed = time.perf_counter() - t0
    return elapsed, len(tracer) if tracer is not None else 0


def run() -> dict:
    dec = get_dec(INSTANCE)
    cfg = ADMMConfig(max_iter=ITERATIONS, raise_on_max_iter=False)
    configs = {
        "baseline": None,
        "disabled": Tracer(enabled=False),
        "enabled": Tracer(),
    }
    # Warm caches once, then interleave the configurations round-robin so
    # machine drift (frequency scaling, cache state) hits all three alike.
    _one_solve(dec, cfg, None)
    best = {name: float("inf") for name in configs}
    spans = dict.fromkeys(configs, 0)
    for _ in range(REPEATS):
        for name, tracer in configs.items():
            elapsed, n_spans = _one_solve(dec, cfg, tracer)
            best[name] = min(best[name], elapsed)
            spans[name] = n_spans
    baseline_s = best["baseline"]
    disabled_s, disabled_spans = best["disabled"], spans["disabled"]
    enabled_s, enabled_spans = best["enabled"], spans["enabled"]

    def overhead(t: float) -> float:
        return (t - baseline_s) / baseline_s

    rows = [
        ["baseline (no tracer)", f"{baseline_s * 1e3:.2f}", "-", 0],
        [
            "disabled tracer",
            f"{disabled_s * 1e3:.2f}",
            f"{100 * overhead(disabled_s):+.2f}%",
            disabled_spans,
        ],
        [
            "enabled tracer",
            f"{enabled_s * 1e3:.2f}",
            f"{100 * overhead(enabled_s):+.2f}%",
            enabled_spans,
        ],
    ]
    text = format_table(
        ["configuration", "wall ms", "overhead", "spans"],
        rows,
        title=(
            f"telemetry overhead ({INSTANCE}, {ITERATIONS} iterations, "
            f"best of {REPEATS}; target <5% enabled, ~0% disabled)"
        ),
    )
    report("telemetry_overhead", text)
    return {
        "baseline_s": baseline_s,
        "disabled_overhead": overhead(disabled_s),
        "enabled_overhead": overhead(enabled_s),
        "enabled_spans": enabled_spans,
    }


def test_telemetry_overhead_report(benchmark):
    stats = run()
    # Every iteration contributes its four phase spans plus the admm.solve
    # root span.
    assert stats["enabled_spans"] == 4 * ITERATIONS + 1
    assert stats["disabled_overhead"] < FAIL_THRESHOLD
    assert stats["enabled_overhead"] < FAIL_THRESHOLD
    dec = get_dec(INSTANCE)
    cfg = ADMMConfig(max_iter=50, raise_on_max_iter=False)
    benchmark(lambda: SolverFreeADMM(dec, cfg, tracer=Tracer()).solve())


if __name__ == "__main__":
    stats = run()
    print(
        f"enabled overhead {100 * stats['enabled_overhead']:+.2f}%  "
        f"disabled overhead {100 * stats['disabled_overhead']:+.2f}%"
    )
