"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 4).  This module provides:

* cached instance construction (the three feeders at paper scale or, in the
  default *quick* mode, a downsized 8500-class instance so the whole
  harness completes in minutes on one core — set ``REPRO_BENCH_FULL=1``
  for paper-scale runs);
* cached decompositions, reference solutions, solves and measured
  per-component costs (expensive artifacts shared across bench files);
* the paper's published numbers for side-by-side reporting;
* a report writer that prints each regenerated table/figure and persists it
  under ``benchmarks/results/``.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

import numpy as np

from repro.core import ADMMConfig, BenchmarkADMM, SolverFreeADMM
from repro.decomposition import decompose
from repro.feeders import ieee13, ieee123, ieee8500
from repro.formulation import build_centralized_lp
from repro.reference import solve_reference
from repro.utils import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-scale instances take tens of minutes on one core; the quick mode
#: downsizes only the 8500-class instance (structure tables still use the
#: full-size instance — they are cheap).
FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

INSTANCES = ("ieee13", "ieee123", "ieee8500")

#: Published evaluation numbers (for the measured-vs-paper columns).
PAPER = {
    "table2": {"ieee13": (456, 454), "ieee123": (1834, 1834), "ieee8500": (86114, 87285)},
    "table3": {
        "ieee13": {"nodes": 29, "lines": 28, "leaves": 7, "S": 50},
        "ieee123": {"nodes": 147, "lines": 146, "leaves": 43, "S": 250},
        "ieee8500": {"nodes": 11932, "lines": 14291, "leaves": 1222, "S": 25001},
    },
    "table4_m": {
        "ieee13": (4, 22, 9.08, 4.42, 453),
        "ieee123": (2, 42, 7.34, 4.43, 1834),
        "ieee8500": (2, 18, 3.44, 2.66, 86108),
    },
    "table4_n": {
        "ieee13": (8, 34, 16.1, 5.14, 805),
        "ieee123": (4, 57, 13.16, 6.5, 3289),
        "ieee8500": (4, 24, 6.69, 3.21, 167394),
    },
    "table5": {
        "ieee13": {"ours": (16, 4.91, 944), "benchmark": (32, 28.13, 1064)},
        "ieee123": {"ours": (16, 7.25, 3496), "benchmark": (128, 169.67, 3215)},
        "ieee8500": {"ours": (16, 668.30, 15817), "benchmark": (512, 44720.11, 26252)},
    },
    # Fig. 4: total-time speedup of 1 GPU over 16 CPUs (approximate read).
    "fig4_speedup": {"ieee13": 2.0, "ieee123": 5.0, "ieee8500": 50.0},
}


def instance_net(name: str):
    if name == "ieee13":
        return ieee13()
    if name == "ieee123":
        return ieee123()
    if name == "ieee8500":
        return ieee8500() if FULL_MODE else ieee8500(n_buses=1600)
    raise ValueError(f"unknown instance {name!r}")


@functools.lru_cache(maxsize=None)
def get_net(name: str):
    return instance_net(name)


@functools.lru_cache(maxsize=None)
def get_lp(name: str):
    return build_centralized_lp(get_net(name))


@functools.lru_cache(maxsize=None)
def get_dec(name: str, merge_leaves: bool = True):
    return decompose(get_lp(name), merge_leaves=merge_leaves)


@functools.lru_cache(maxsize=None)
def get_ref(name: str):
    return solve_reference(get_lp(name))


#: Iteration budgets for to-convergence runs per instance (quick mode).
SOLVE_BUDGET = {"ieee13": 30_000, "ieee123": 200_000, "ieee8500": 400_000}


@functools.lru_cache(maxsize=None)
def get_solution(name: str):
    """Converged solver-free run with the paper's default settings."""
    cfg = ADMMConfig(max_iter=SOLVE_BUDGET[name], record_history=True)
    return SolverFreeADMM(get_dec(name), cfg).solve()


@functools.lru_cache(maxsize=None)
def get_local_costs(name: str) -> tuple[np.ndarray, np.ndarray]:
    """Measured per-component local-update seconds: (ours, benchmark).

    Benchmark costs on large instances are measured on a size-stratified
    sample and imputed by subproblem dimension (measuring 15k interior-point
    solves serially would dominate the harness runtime without changing the
    statistics).
    """
    dec = get_dec(name)
    ours = SolverFreeADMM(dec).measure_local_costs(repeats=3)
    bench = BenchmarkADMM(dec)
    s_total = dec.n_components
    if s_total <= 400:
        theirs = bench.measure_local_costs(repeats=1)
    else:
        rng = np.random.default_rng(0)
        sample = rng.choice(s_total, size=400, replace=False)
        sizes = np.array([c.n_vars for c in dec.components])
        by_size: dict[int, list[float]] = {}
        from repro.qp import solve_qp_box_eq
        import time as _time

        for s in sample:
            comp = dec.components[s]
            v = rng.standard_normal(comp.n_vars) * 0.1
            t0 = _time.perf_counter()
            solve_qp_box_eq(
                100.0 * np.eye(comp.n_vars), -100.0 * v, comp.a, comp.b,
                comp.lb, comp.ub,
            )
            by_size.setdefault(comp.n_vars, []).append(_time.perf_counter() - t0)
        means = {k: float(np.mean(v)) for k, v in by_size.items()}
        keys = np.array(sorted(means))
        vals = np.array([means[k] for k in keys])
        theirs = np.interp(sizes, keys, vals)
    return ours, theirs


def report(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


__all__ = [
    "FULL_MODE",
    "INSTANCES",
    "PAPER",
    "get_net",
    "get_lp",
    "get_dec",
    "get_ref",
    "get_solution",
    "get_local_costs",
    "report",
    "format_table",
    "SOLVE_BUDGET",
]
