"""Table III: component counts of the component-wise decomposition.

Checks the identity S = #nodes + #lines - #leaves on every instance and
benchmarks the partitioning step.
"""

from _common import INSTANCES, PAPER, format_table, get_dec, get_net, report

from repro.decomposition import partition_components


def test_table3_report(benchmark):
    rows = []
    for name in INSTANCES:
        counts = get_dec(name).partition_counts
        p = PAPER["table3"][name]
        rows.append(
            [
                name,
                counts.n_nodes,
                counts.n_lines,
                counts.n_leaves,
                counts.n_components,
                p["nodes"],
                p["lines"],
                p["leaves"],
                p["S"],
            ]
        )
        assert counts.n_components == counts.n_nodes + counts.n_lines - counts.n_leaves
    text = format_table(
        ["instance", "nodes", "lines", "leaves", "S", "nodes*", "lines*", "leaves*", "S*"],
        rows,
        title="Table III: component counts (starred columns: paper)",
    )
    report("table3_component_counts", text)

    net = get_net("ieee123")
    benchmark(lambda: partition_components(net))
