"""Stochastic serving scaling: scenarios/sec vs scenario-set size, plus the
measured value of the stochastic solution (VSS).

Serves one :class:`~repro.serve.requests.StochasticRequest` per (feeder,
K) cell through the scenario engine — the K scenario children are stacked
into a single batched ADMM solve, so the scan measures how scenario
throughput scales with the batch the paper's batched kernels amortize.
Feeders: the DER-augmented 13-bus newsvendor instance (load *and* PV
uncertainty) and the statistically matched 34-bus feeder (load-only).

The VSS entry solves the two-stage recourse problem and the mean-scenario
problem exactly (HiGHS) on ``ieee13-der`` and reports how much expected
cost the deterministic first stage leaves on the table — the headline
"why two-stage at all" number (strictly positive by construction of the
DER feeder; see docs/STOCHASTIC.md).

Writes ``BENCH_stochastic.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _common import report

from repro.feeders import ieee13_der
from repro.serve import ScenarioEngine, SolveOptions, StochasticRequest
from repro.stochastic import ScenarioSampler, value_of_stochastic_solution
from repro.utils import format_table

FEEDERS = ("ieee13-der", "ieee34")
SCENARIO_COUNTS = (4, 8, 16)
#: Stochastic instances favour rho ~ 10 (docs/STOCHASTIC.md).
OPTIONS = SolveOptions(rho=10.0, eps_rel=1e-3, max_iter=60_000)
VSS_SCENARIOS = 16
SEED = 1
OUTPUT = Path(__file__).parent.parent / "BENCH_stochastic.json"


def _serve_cell(feeder: str, n_scenarios: int) -> dict:
    engine = ScenarioEngine(max_batch=n_scenarios, warm_start=False)
    request = StochasticRequest(
        request_id=f"bench-{feeder}-{n_scenarios}",
        feeder=feeder,
        n_scenarios=n_scenarios,
        seed=SEED,
        options=OPTIONS,
    )
    t0 = time.perf_counter()
    [response] = engine.serve([request])
    wall = time.perf_counter() - t0
    return {
        "status": response.status,
        "converged": response.status == "converged",
        "iterations": int(response.iterations),
        "expected_cost": response.expected_cost,
        "cvar_cost": response.cvar_cost,
        "wall_s": wall,
        "scenarios_per_s": n_scenarios / wall if wall > 0 else None,
    }


def _measure_vss() -> dict:
    net = ieee13_der()
    scenarios = ScenarioSampler.from_network(net, seed=SEED).sample(VSS_SCENARIOS)
    rep = value_of_stochastic_solution(net, scenarios)
    return {
        "feeder": "ieee13-der",
        "n_scenarios": VSS_SCENARIOS,
        "seed": SEED,
        "stochastic_eval": rep.stochastic_eval,
        "deterministic_eval": rep.deterministic_eval,
        "vss": rep.vss,
    }


def run() -> dict:
    scaling: dict[str, dict] = {}
    for feeder in FEEDERS:
        scaling[feeder] = {
            str(k): _serve_cell(feeder, k) for k in SCENARIO_COUNTS
        }
    stats = {
        "rho": OPTIONS.rho,
        "eps_rel": OPTIONS.eps_rel,
        "scenario_counts": list(SCENARIO_COUNTS),
        "scaling": scaling,
        "vss": _measure_vss(),
    }
    OUTPUT.write_text(json.dumps(stats, indent=2) + "\n")

    rows = []
    for feeder, cells in scaling.items():
        for k, cell in cells.items():
            rows.append([
                feeder,
                k,
                "yes" if cell["converged"] else "no",
                cell["iterations"],
                f"{cell['wall_s']:.2f}",
                f"{cell['scenarios_per_s']:.1f}",
            ])
    vss = stats["vss"]
    report(
        "bench_stochastic",
        format_table(
            ["feeder", "K", "conv", "iters", "wall s", "scen/s"],
            rows,
            title=(
                f"Stochastic serving scaling (rho {OPTIONS.rho:g}) — "
                f"VSS on ieee13-der/K={VSS_SCENARIOS}: {vss['vss']:.6f}"
            ),
        ),
    )
    return stats


def test_stochastic_bench():
    stats = run()
    for feeder, cells in stats["scaling"].items():
        for k, cell in cells.items():
            assert cell["converged"], (feeder, k, cell["status"])
            assert cell["cvar_cost"] >= cell["expected_cost"] - 1e-9
    # Batching amortizes: the largest scenario set must not serve slower
    # (per scenario) than the smallest one.
    for cells in stats["scaling"].values():
        small = cells[str(SCENARIO_COUNTS[0])]["scenarios_per_s"]
        large = cells[str(SCENARIO_COUNTS[-1])]["scenarios_per_s"]
        assert large >= 0.8 * small
    assert stats["vss"]["vss"] >= 0.0
    assert OUTPUT.exists()


if __name__ == "__main__":
    run()
