"""Ablation A: fixed rho vs residual balancing (paper Section III-D, [29]).

The paper ships Algorithm 1 with fixed rho = 100 and cites residual
balancing as a possible acceleration.  This ablation quantifies the choice
on our instances: a fixed-rho sweep plus the balanced variant, reporting
iterations to the (16) criterion and the objective gap to the centralized
optimum.  On these LPs balancing tends to wander *away* from a good fixed
rho — evidence for the paper's default.
"""

from _common import format_table, get_dec, get_ref, report

from repro.core import ADMMConfig, SolverFreeADMM


def run(dec, ref, rho=100.0, balancing=False):
    cfg = ADMMConfig(
        rho=rho,
        max_iter=150_000,
        record_history=True,
        residual_balancing=balancing,
    )
    res = SolverFreeADMM(dec, cfg).solve()
    gap = ref.compare_objective(res.objective)
    final_rho = res.history.rho[-1]
    return res, gap, final_rho


def test_ablation_rho_report(benchmark):
    dec = get_dec("ieee13")
    ref = get_ref("ieee13")
    rows = []
    iters_by_rho = {}
    for rho in (10.0, 50.0, 100.0, 200.0, 1000.0):
        res, gap, _ = run(dec, ref, rho=rho)
        iters_by_rho[rho] = res.iterations
        rows.append(
            [f"fixed rho={rho:g}", res.iterations,
             "yes" if res.converged else "no", f"{gap:.2e}"]
        )
    res_b, gap_b, final_rho = run(dec, ref, balancing=True)
    rows.append(
        [f"balanced (final rho={final_rho:g})", res_b.iterations,
         "yes" if res_b.converged else "no", f"{gap_b:.2e}"]
    )
    text = format_table(
        ["variant", "iterations", "converged", "objective gap"],
        rows,
        title="Ablation A (ieee13): penalty parameter strategy",
    )
    report("ablation_rho", text)

    # The paper's default must be a sane choice: it converges with a tight
    # gap, and no swept value beats it by an order of magnitude.
    res_100, gap_100, _ = run(dec, ref, rho=100.0)
    assert res_100.converged and gap_100 < 1e-2
    assert min(iters_by_rho.values()) > res_100.iterations / 10

    benchmark(
        lambda: SolverFreeADMM(dec, ADMMConfig(max_iter=200, record_history=False)).solve()
    )
