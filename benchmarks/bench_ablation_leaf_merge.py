"""Ablation B: the leaf-merging rule of the partition (Section V-A).

The paper merges each leaf bus with its connecting line "based on our
observation that the subproblems related to leaf nodes ... are much smaller
than the other subproblems".  This ablation measures what the rule buys:
fewer components (smaller S), a larger mean subproblem, and the effect on
per-iteration local-update cost and iterations to convergence.
"""

from _common import format_table, get_dec, get_lp, report

from repro.core import ADMMConfig, SolverFreeADMM
from repro.decomposition import decompose


def test_ablation_leaf_merge_report(benchmark):
    rows = []
    for name in ("ieee13", "ieee123"):
        lp = get_lp(name)
        merged = get_dec(name)
        plain = decompose(lp, merge_leaves=False)
        res_m = SolverFreeADMM(merged, ADMMConfig(max_iter=200_000, record_history=False)).solve()
        res_p = SolverFreeADMM(plain, ADMMConfig(max_iter=200_000, record_history=False)).solve()
        ms_m, _ = merged.size_stats()
        ms_p, _ = plain.size_stats()
        for tag, dec, res, ms in (
            ("merged", merged, res_m, ms_m),
            ("no merge", plain, res_p, ms_p),
        ):
            rows.append(
                [
                    name,
                    tag,
                    dec.n_components,
                    round(ms.mean, 2),
                    res.iterations,
                    "yes" if res.converged else "no",
                    f"{res.timers['local'] / res.iterations * 1e6:.1f}",
                ]
            )
        assert merged.n_components < plain.n_components
    text = format_table(
        ["instance", "variant", "S", "mean m_s", "iterations", "converged",
         "local us/iter"],
        rows,
        title="Ablation B: leaf merging on/off",
    )
    report("ablation_leaf_merge", text)

    lp = get_lp("ieee123")
    benchmark(lambda: decompose(lp, merge_leaves=False))
