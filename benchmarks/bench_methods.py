"""The fidelity ladder's accuracy/speed frontier (docs/METHODS.md).

Solves every rung — linearized, qp, socp — on the Table-5 feeders at the
rung's spec defaults, records the relative objective gap against the
rung's own HiGHS reference (the SOCP's by cutting planes), the iteration
count, the measured wall time, and the modeled A100 solve time, and
asserts the ladder property the facade promises: on at least one Table-5
feeder the gaps order ``socp <= qp <= linearized``.

Writes ``BENCH_methods.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _common import report

from repro.feeders import ieee13
from repro.methods import method_report
from repro.utils import format_table

#: ieee13 is the Table-5 feeder the spec tiers are tuned on; the ladder's
#: behaviour on ieee34 (per-feeder tightened settings) is covered by
#: tests/test_methods.py::TestParityIEEE34.
FEEDERS = (("ieee13", ieee13),)
OUTPUT = Path(__file__).parent.parent / "BENCH_methods.json"


def run() -> dict:
    stats: dict[str, object] = {"feeders": {}}
    for name, factory in FEEDERS:
        t0 = time.perf_counter()
        cells = [rep.to_dict() for rep in method_report(factory())]
        stats["feeders"][name] = {
            "methods": cells,
            "wall_s": time.perf_counter() - t0,
        }
    gaps13 = {c["method"]: c["gap"] for c in stats["feeders"]["ieee13"]["methods"]}
    stats["ladder_ordered"] = bool(
        gaps13["socp"] <= gaps13["qp"] <= gaps13["linearized"]
    )
    OUTPUT.write_text(json.dumps(stats, indent=2) + "\n")

    rows = []
    for name, entry in stats["feeders"].items():
        for c in entry["methods"]:
            rows.append([
                name,
                c["method"],
                "yes" if c["converged"] else "no",
                c["iterations"],
                f"{c['gap']:.3e}",
                f"{c['gap_tol']:g}",
                "yes" if c["within_tier"] else "NO",
                f"{c['modeled_solve_s'] * 1e3:.1f}",
            ])
    report(
        "bench_methods",
        format_table(
            ["feeder", "method", "conv", "iters", "gap", "tier", "ok", "modeled ms"],
            rows,
            title=(
                "Fidelity ladder: objective gap vs HiGHS at spec defaults "
                f"(ladder ordered: {stats['ladder_ordered']})"
            ),
        ),
    )
    return stats


def test_methods_bench():
    stats = run()
    for name, entry in stats["feeders"].items():
        for c in entry["methods"]:
            assert c["converged"], (name, c["method"])
            assert c["within_tier"], (name, c["method"], c["gap"])
    # The headline acceptance: higher fidelity, smaller gap, on a
    # Table-5 feeder.
    assert stats["ladder_ordered"]
    assert OUTPUT.exists()


if __name__ == "__main__":
    test_methods_bench()
