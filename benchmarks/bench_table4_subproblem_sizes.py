"""Table IV: distribution of component subproblem sizes (m_s, n_s).

The paper's qualitative signature must reproduce: the 8500-class instance
has the *smallest average* subproblems of the three (dominated by 1/2-phase
secondaries) while having by far the most components.  Benchmarks the full
decomposition of the 13-bus instance.
"""

from _common import INSTANCES, PAPER, format_table, get_dec, get_lp, report

from repro.decomposition import decompose


def _stats_row(name, which, stats, paper_row):
    return [
        name,
        which,
        stats.minimum,
        stats.maximum,
        round(stats.mean, 2),
        round(stats.stdev, 2),
        stats.total,
        paper_row[2],
        paper_row[4],
    ]


def test_table4_report(benchmark):
    rows = []
    means_m = {}
    for name in INSTANCES:
        ms, ns = get_dec(name).size_stats()
        rows.append(_stats_row(name, "m_s", ms, PAPER["table4_m"][name]))
        rows.append(_stats_row(name, "n_s", ns, PAPER["table4_n"][name]))
        means_m[name] = ms.mean
    text = format_table(
        ["instance", "dim", "min", "max", "mean", "stdev", "sum", "mean*", "sum*"],
        rows,
        title="Table IV: component subproblem sizes (starred: paper)",
    )
    report("table4_subproblem_sizes", text)

    # Qualitative signature: the largest instance has the smallest mean m_s.
    assert means_m["ieee8500"] < means_m["ieee13"]
    assert means_m["ieee8500"] < means_m["ieee123"]

    lp = get_lp("ieee13")
    benchmark(lambda: decompose(lp))
