"""Serving benchmark: batched multi-scenario throughput + warm-start savings.

Extension of the paper's evaluation to the serving setting: a stream of
perturbed IEEE-13 scenarios is pushed through :class:`repro.serve.ScenarioEngine`
at several batch sizes.  Reported per batch size:

* scenarios/second (end-to-end, including scenario assembly),
* warm vs cold mean iteration counts and the relative saving,
* warm-start cache hit rate and projection-factorization reuse,
* the modeled A100 per-iteration time of the stacked batch — batching K
  scenarios multiplies the batched-kernel work by K but amortizes kernel
  launches, the same effect the paper exploits across components.
"""

from _common import format_table, report

from repro.cli import generate_scenarios
from repro.serve import ScenarioEngine

FEEDER = "ieee13"
N_SCENARIOS = 32
SEED = 0


def _serve(max_batch: int):
    engine = ScenarioEngine(max_batch=max_batch, queue_size=128, cache_capacity=64)
    requests = generate_scenarios(FEEDER, N_SCENARIOS, SEED)
    responses = engine.serve(requests)
    return engine.snapshot(), responses


def test_serving_throughput_report(benchmark):
    rows = []
    snaps = {}
    for max_batch in (1, 4, 8, 16):
        snap, responses = _serve(max_batch)
        snaps[max_batch] = snap
        assert snap["served"] == N_SCENARIOS
        assert snap["converged"] == N_SCENARIOS
        rows.append(
            [
                max_batch,
                snap["n_batches"],
                f"{snap['scenarios_per_second']:.1f}",
                f"{snap['mean_cold_iterations']:.0f}",
                f"{snap['mean_warm_iterations']:.0f}",
                f"{100 * snap['warm_start_iteration_savings']:.0f}%",
                f"{100 * snap['cache_hit_rate']:.0f}%",
                f"{snap['factorizations_reused']}/{snap['factorizations_computed'] + snap['factorizations_reused']}",
                f"{snap['modeled_gpu_iteration_us']:.1f}",
            ]
        )
    text = format_table(
        [
            "max_batch",
            "batches",
            "scen/s",
            "cold iters",
            "warm iters",
            "warm saving",
            "hit rate",
            "proj reuse",
            "A100 us/iter",
        ],
        rows,
        title=(
            f"scenario serving ({FEEDER}, {N_SCENARIOS} scenarios, seed {SEED}): "
            "throughput and warm-start savings by batch size"
        ),
    )
    report("serving_throughput", text)

    # Acceptance: the cache is exercised and warm starts genuinely save
    # iterations at every batch size.
    for snap in snaps.values():
        assert snap["cache_hit_rate"] > 0
        assert snap["mean_warm_iterations"] < snap["mean_cold_iterations"]
    # Batching the stream lifts end-to-end throughput over one-at-a-time.
    assert (
        snaps[8]["scenarios_per_second"] > snaps[1]["scenarios_per_second"]
    ) or (snaps[16]["scenarios_per_second"] > snaps[1]["scenarios_per_second"])
