"""Per-backend performance: iterations/sec, time-to-tolerance, modeled GPU
time — the perf trajectory of the array-execution layer.

Runs the solver-free ADMM on IEEE13 under every registered backend that is
available on this machine (``numpy64``, ``numpy32``, and ``cupy`` when a
CUDA device is present) and writes the machine-readable scoreboard to
``BENCH_backends.json`` at the repository root.  Unavailable backends are
recorded as such rather than skipped silently, so the JSON schema is stable
across machines.

The headline number is ``speedup_numpy32``: wall-clock of the fp64 solve
over the fp32 solve to the same tolerance.  On NumPy the win comes from
halved memory traffic in the batched matmuls and vector kernels; the
modeled GPU iteration time (reported per backend via the roofline model's
``itemsize``) shows the same effect for device execution.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _common import get_dec, report

from repro.backend import available_backends, backend_names, get_backend
from repro.core import ADMMConfig, SolverFreeADMM
from repro.gpu.costmodel import iteration_times
from repro.gpu.device import A100
from repro.utils import format_table

INSTANCE = "ieee13"
REPEATS = 3
OUTPUT = Path(__file__).parent.parent / "BENCH_backends.json"


def _solve_timed(dec, backend_name: str) -> dict:
    cfg = ADMMConfig(record_history=False)
    backend = get_backend(backend_name)
    solver = SolverFreeADMM(dec, cfg, backend=backend)
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = solver.solve()
        best = min(best, time.perf_counter() - t0)
    modeled = iteration_times(A100, dec, itemsize=backend.policy.itemsize)
    return {
        "available": True,
        "precision": backend.policy.name,
        "compute_dtype": str(backend.compute_dtype),
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
        "objective": float(result.objective),
        "algorithm": result.algorithm,
        "time_to_tolerance_s": best,
        "iterations_per_s": result.iterations / best if best > 0 else None,
        "modeled_gpu_iteration_us": 1e6 * modeled.total_s,
    }


def run() -> dict:
    dec = get_dec(INSTANCE)
    cfg = ADMMConfig()
    backends = {}
    for name in backend_names():
        if name in available_backends():
            backends[name] = _solve_timed(dec, name)
        else:
            backends[name] = {"available": False}
    stats = {
        "instance": INSTANCE,
        "eps_rel": cfg.eps_rel,
        "rho": cfg.rho,
        "backends": backends,
    }
    b64, b32 = backends["numpy64"], backends["numpy32"]
    stats["speedup_numpy32"] = (
        b64["time_to_tolerance_s"] / b32["time_to_tolerance_s"]
    )
    OUTPUT.write_text(json.dumps(stats, indent=2) + "\n")

    rows = []
    for name, b in backends.items():
        if not b["available"]:
            rows.append([name, "-", "-", "-", "-", "unavailable"])
            continue
        rows.append([
            name,
            b["precision"],
            b["iterations"],
            f"{1e3 * b['time_to_tolerance_s']:.1f}",
            f"{b['iterations_per_s']:,.0f}",
            f"{b['modeled_gpu_iteration_us']:.2f}",
        ])
    report(
        "bench_backends",
        format_table(
            ["backend", "precision", "iters", "ms to tol", "iters/s", "gpu us/iter"],
            rows,
            title=(
                f"Backend scoreboard — {INSTANCE}, eps_rel {cfg.eps_rel:g} "
                f"(fp32 speedup {stats['speedup_numpy32']:.2f}x)"
            ),
        ),
    )
    return stats


def test_backend_scoreboard():
    stats = run()
    b64 = stats["backends"]["numpy64"]
    b32 = stats["backends"]["numpy32"]
    assert b64["converged"] and b32["converged"]
    rel = abs(b32["objective"] - b64["objective"]) / abs(b64["objective"])
    assert rel < 1e-4
    assert stats["speedup_numpy32"] > 0
    assert OUTPUT.exists()


if __name__ == "__main__":
    stats = run()
    print(f"wrote {OUTPUT}")
