"""Table II: rows and columns of the centralized constraint matrix A.

Regenerates the problem-size table for the three instances and benchmarks
the LP assembly itself.  Our absolute sizes differ from the paper's because
the 123/8500-class feeders are statistically matched substitutes (see
DESIGN.md), but the ordering and growth across instances must hold.
"""

from _common import INSTANCES, PAPER, format_table, get_lp, get_net, report

from repro.formulation import build_centralized_lp


def test_table2_report(benchmark):
    rows = []
    for name in INSTANCES:
        lp = get_lp(name)
        m, n = lp.shape
        pm, pn = PAPER["table2"][name]
        rows.append([name, m, n, pm, pn])
    text = format_table(
        ["instance", "rows (ours)", "cols (ours)", "rows (paper)", "cols (paper)"],
        rows,
        title="Table II: size of the centralized A",
    )
    report("table2_problem_sizes", text)

    sizes_ours = [get_lp(n).shape[0] for n in INSTANCES]
    assert sizes_ours == sorted(sizes_ours), "A must grow with instance size"

    net = get_net("ieee13")
    benchmark(lambda: build_centralized_lp(net))
