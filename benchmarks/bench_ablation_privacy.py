"""Ablation E: differentially private uploads (paper future-work [13]).

Sweeps the Gaussian noise scale and reports the accuracy cost: the noisy
runs cannot certify the (16) criterion (the residuals inherit the noise
floor), but the *objective* degrades gracefully and proportionally to
sigma — the quantitative content behind the paper's privacy remark.
"""

from _common import format_table, get_dec, get_ref, report

from repro.core import ADMMConfig, PrivacyConfig, PrivateSolverFreeADMM, SolverFreeADMM

ITERS = 15_000


def test_ablation_privacy_report(benchmark):
    dec = get_dec("ieee13")
    ref = get_ref("ieee13")
    base = SolverFreeADMM(dec, ADMMConfig(max_iter=ITERS, record_history=False)).solve()
    rows = [["(no privacy)", "-", base.iterations, f"{ref.compare_objective(base.objective):.2e}", "-"]]
    gaps = {}
    for sigma in (1e-5, 1e-4, 1e-3):
        solver = PrivateSolverFreeADMM(
            dec,
            PrivacyConfig(clip=1.0, sigma=sigma, seed=0),
            ADMMConfig(max_iter=ITERS, record_history=False),
        )
        res = solver.solve()
        gaps[sigma] = ref.compare_objective(res.objective)
        rows.append(
            [
                f"sigma={sigma:g}",
                f"{solver.privacy.rho_zcdp_per_release():.2e}",
                res.iterations,
                f"{gaps[sigma]:.2e}",
                f"{solver.accountant.epsilon(1e-6):.2e}",
            ]
        )
    text = format_table(
        ["variant", "zCDP/release", "iterations", "objective gap", "eps(1e-6)"],
        rows,
        title="Ablation E (ieee13): differentially private consensus",
    )
    text += (
        "\nNote: per-iteration releases compose over thousands of iterations, so "
        "meaningful end-to-end epsilon requires large sigma or few iterations — "
        "the gap column shows what that costs."
    )
    report("ablation_privacy", text)

    # Graceful degradation: gap grows monotonically with sigma, and small
    # noise stays within an order of magnitude of the exact run.
    assert gaps[1e-5] <= gaps[1e-4] <= gaps[1e-3]
    assert gaps[1e-5] < 5e-3

    benchmark(
        lambda: PrivateSolverFreeADMM(
            dec, PrivacyConfig(sigma=1e-4), ADMMConfig(max_iter=100, record_history=False)
        ).solve()
    )
