"""Ablation F: compressed uploads (paper future-work [37]).

Quantifies the bytes-on-the-wire vs iterations tradeoff of compressing the
agents' per-iteration uploads: difference-encoded top-k sparsification and
low-bit quantization with error feedback.  The headline: quantized
innovations with error feedback are nearly free (same iterations, an order
of magnitude fewer bytes), while aggressive sparsification costs rounds and
eventually convergence.
"""

from _common import format_table, get_dec, get_ref, report

from repro.core import ADMMConfig, SolverFreeADMM
from repro.parallel import (
    CompressedSolverFreeADMM,
    ErrorFeedback,
    TopKCompressor,
    UniformQuantizer,
)

BUDGET = 120_000


def test_ablation_compression_report(benchmark):
    dec = get_dec("ieee13")
    ref = get_ref("ieee13")
    base = SolverFreeADMM(dec, ADMMConfig(max_iter=BUDGET, record_history=False)).solve()
    rows = [
        ["(dense)", base.iterations, "yes" if base.converged else "no",
         f"{ref.compare_objective(base.objective):.2e}", "1.0x"]
    ]
    results = {}
    for tag, compressor in (
        ("topk 50%", ErrorFeedback(TopKCompressor(0.5))),
        ("topk 30%", ErrorFeedback(TopKCompressor(0.3))),
        ("quant 8b + EF", ErrorFeedback(UniformQuantizer(8))),
        ("quant 4b + EF", ErrorFeedback(UniformQuantizer(4))),
    ):
        solver = CompressedSolverFreeADMM(
            dec, compressor, ADMMConfig(max_iter=BUDGET, record_history=False)
        )
        res = solver.solve()
        results[tag] = (res, solver.compression_ratio)
        rows.append(
            [
                tag,
                res.iterations,
                "yes" if res.converged else "no",
                f"{ref.compare_objective(res.objective):.2e}",
                f"{solver.compression_ratio:.1f}x",
            ]
        )
    text = format_table(
        ["variant", "iterations", "converged", "objective gap", "bytes saved"],
        rows,
        title="Ablation F (ieee13): compressed consensus uploads",
    )
    report("ablation_compression", text)

    # Quantization with error feedback is nearly free.
    q4, ratio4 = results["quant 4b + EF"]
    assert q4.converged
    assert q4.iterations <= 1.2 * base.iterations
    assert ratio4 > 8.0
    # Sparsified runs converge with a bounded iteration penalty.
    t5, ratio5 = results["topk 50%"]
    assert t5.converged and ratio5 > 1.2

    benchmark(
        lambda: CompressedSolverFreeADMM(
            dec,
            ErrorFeedback(UniformQuantizer(4)),
            ADMMConfig(max_iter=100, record_history=False),
        ).solve()
    )
