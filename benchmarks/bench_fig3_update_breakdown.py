"""Fig. 3: per-iteration global/local/dual time breakdown across platforms.

Three rows per instance, as in the paper's 3x3 figure:

* **multi-CPU** (simulated cluster from measured costs): local time drops
  with more CPUs, global/dual stay flat (aggregator-side);
* **multi-GPU** (device model + MPI staging): per-device compute shrinks
  but communication makes the local stage *rise slightly* with more GPUs;
* **single GPU, threads/block sweep** (occupancy model): more threads help,
  most visibly on the 8500-class instance with its many tiny components.
"""

from _common import INSTANCES, format_table, get_dec, get_local_costs, get_solution, report

from repro.gpu import A100, iteration_times, multi_device_iteration_times
from repro.parallel import CPU_CLUSTER_COMM, GPU_CLUSTER_COMM, SimulatedCluster

CPU_RANKS = [1, 2, 4, 8, 16, 32, 64]
GPU_RANKS = [1, 2, 4, 8]
THREADS = [1, 2, 4, 8, 16, 32, 64]


def _fmt(x):
    return f"{x * 1e3:.4f}"


def test_fig3_report(benchmark):
    blocks = []
    for name in INSTANCES:
        dec = get_dec(name)
        sol = get_solution(name)
        g = sol.timers["global"] / sol.iterations
        d = sol.timers["dual"] / sol.iterations
        ours_costs, _ = get_local_costs(name)

        # Row 1: multiple CPUs.
        rows = []
        for n in CPU_RANKS:
            t = SimulatedCluster(dec, ours_costs, n, CPU_CLUSTER_COMM).local_update_timing()
            rows.append([n, _fmt(g), _fmt(t.total_s), _fmt(d), _fmt(g + t.total_s + d)])
        blocks.append(
            format_table(
                ["#CPUs", "global", "local", "dual", "total"],
                rows,
                title=f"Fig. 3 row 1 ({name}): per-iteration time [ms], multi-CPU",
            )
        )
        # Pure compute falls monotonically with ranks; the *total* can turn
        # up earlier on tiny instances once the latency term dominates.
        compute_cpu = [
            SimulatedCluster(dec, ours_costs, n, CPU_CLUSTER_COMM)
            .local_update_timing()
            .compute_s
            for n in CPU_RANKS[:4]
        ]
        assert compute_cpu == sorted(compute_cpu, reverse=True), (
            f"{name}: CPU local compute should fall over the first few ranks"
        )

        # Row 2: multiple GPUs (MPI with device staging).
        rows = []
        gpu_locals = []
        for n in GPU_RANKS:
            t = multi_device_iteration_times(A100, dec, n, GPU_CLUSTER_COMM)
            gpu_locals.append(t.local_s + t.comm_s)
            rows.append(
                [n, _fmt(t.global_s), _fmt(t.local_s + t.comm_s), _fmt(t.dual_s),
                 _fmt(t.total_s)]
            )
        blocks.append(
            format_table(
                ["#GPUs", "global", "local(+comm)", "dual", "total"],
                rows,
                title=f"Fig. 3 row 2 ({name}): per-iteration time [ms], multi-GPU",
            )
        )
        # The paper's observation: MPI staging makes multi-GPU local time
        # creep *up* with more GPUs.
        assert gpu_locals[-1] > gpu_locals[0]

        # Row 3: single GPU, thread sweep.
        rows = []
        thread_locals = []
        for t_per_block in THREADS:
            t = iteration_times(A100, dec, threads_per_block=t_per_block)
            thread_locals.append(t.local_s)
            rows.append(
                [t_per_block, _fmt(t.global_s), _fmt(t.local_s), _fmt(t.dual_s),
                 _fmt(t.total_s)]
            )
        blocks.append(
            format_table(
                ["threads", "global", "local", "dual", "total"],
                rows,
                title=f"Fig. 3 row 3 ({name}): per-iteration time [ms], 1 GPU thread sweep",
            )
        )
        assert all(a >= b - 1e-15 for a, b in zip(thread_locals, thread_locals[1:]))

    # Cross-instance claim: the thread sweep matters most for the 8500-class
    # instance in *absolute* terms — it has by far the most blocks in
    # flight, so the saved cycles dominate, whereas the 13-bus instance is
    # launch-latency bound and threads barely move its wall time.
    def thread_saving(name):
        dec = get_dec(name)
        t1 = iteration_times(A100, dec, threads_per_block=1).local_s
        t64 = iteration_times(A100, dec, threads_per_block=64).local_s
        return t1 - t64

    savings = {name: thread_saving(name) for name in INSTANCES}
    # (The 13-bus instance also shows a large *relative* saving because its
    # single biggest component is the slowest block at T=1; the robust
    # cross-instance ordering is against the mid-size instance.)
    assert savings["ieee8500"] > savings["ieee123"]

    report("fig3_update_breakdown", "\n\n".join(blocks))

    dec = get_dec("ieee8500")
    benchmark(lambda: iteration_times(A100, dec, threads_per_block=32))
