"""Resilience overhead: fault tolerance must be ~free on the clean path.

The hardening of this repo (docs/RESILIENCE.md) adds three things to
fault-free executions:

* the **divergence guard** in the core loops — two scalar ``isfinite``
  tests per iteration on residual norms already being computed;
* the **fault-tolerant runner** around the distributed loop — periodic
  consensus checkpoints plus the crash/staleness bookkeeping, with no
  fault plan attached;
* the serving engine's **injector/breaker gates** — one falsy check per
  iteration and one breaker lookup per batch.

This benchmark measures the first two on a fixed iteration budget of the
123-bus instance (the third rides inside the serving throughput
benchmark).  Target: <5% wall-clock overhead each.
"""

import time

from _common import format_table, get_dec, report

from repro.core import ADMMConfig, SolverFreeADMM
from repro.parallel import CPU_CLUSTER_COMM, DistributedADMMRunner
from repro.resilience import FaultTolerantADMMRunner

INSTANCE = "ieee123"
ITERATIONS = 400
N_RANKS = 4
CHECKPOINT_EVERY = 25
REPEATS = 7

#: Gate generously above the 5% target: best-of-N on a shared CI runner
#: still jitters by a few percent, and the report shows the real number.
FAIL_THRESHOLD = 0.15


def _time_best(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run() -> dict:
    dec = get_dec(INSTANCE)
    guard_on = ADMMConfig(max_iter=ITERATIONS, record_history=False)
    guard_off = ADMMConfig(
        max_iter=ITERATIONS, record_history=False, divergence_guard=False
    )

    # Warm every cache (factorizations, buckets) before timing anything.
    SolverFreeADMM(dec, guard_on).solve()
    DistributedADMMRunner(dec, N_RANKS, CPU_CLUSTER_COMM, guard_on).solve()

    serial_off = _time_best(lambda: SolverFreeADMM(dec, guard_off).solve())
    serial_on = _time_best(lambda: SolverFreeADMM(dec, guard_on).solve())
    plain = _time_best(
        lambda: DistributedADMMRunner(dec, N_RANKS, CPU_CLUSTER_COMM, guard_on).solve()
    )
    ft = _time_best(
        lambda: FaultTolerantADMMRunner(
            dec, N_RANKS, CPU_CLUSTER_COMM, guard_on, checkpoint_every=CHECKPOINT_EVERY
        ).solve()
    )

    guard_overhead = serial_on / serial_off - 1.0
    ft_overhead = ft / plain - 1.0
    rows = [
        ["serial, guard off", f"{serial_off * 1e3:.2f}", "baseline"],
        ["serial, guard on", f"{serial_on * 1e3:.2f}", f"{100 * guard_overhead:+.2f}%"],
        ["distributed, plain", f"{plain * 1e3:.2f}", "baseline"],
        [
            f"distributed, fault-tolerant (ckpt every {CHECKPOINT_EVERY})",
            f"{ft * 1e3:.2f}",
            f"{100 * ft_overhead:+.2f}%",
        ],
    ]
    text = format_table(
        ["configuration", "wall ms", "overhead"],
        rows,
        title=(
            f"clean-path resilience overhead ({INSTANCE}, {ITERATIONS} "
            f"iterations, {N_RANKS} ranks, best of {REPEATS}; target <5%)"
        ),
    )
    report("resilience_overhead", text)
    return {
        "guard_overhead": guard_overhead,
        "ft_overhead": ft_overhead,
    }


def test_resilience_overhead_report(benchmark):
    stats = run()
    assert stats["guard_overhead"] < FAIL_THRESHOLD
    assert stats["ft_overhead"] < FAIL_THRESHOLD
    dec = get_dec(INSTANCE)
    cfg = ADMMConfig(max_iter=50, record_history=False)
    benchmark(
        lambda: FaultTolerantADMMRunner(dec, N_RANKS, CPU_CLUSTER_COMM, cfg).solve()
    )


if __name__ == "__main__":
    stats = run()
    print(
        f"divergence-guard overhead {100 * stats['guard_overhead']:+.2f}%  "
        f"fault-tolerant runner overhead {100 * stats['ft_overhead']:+.2f}%"
    )
