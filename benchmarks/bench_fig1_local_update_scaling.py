"""Fig. 1: average local-update wall time per iteration vs number of CPUs.

Three panels per instance, as in the paper: (a) total local-update time,
(b) pure compute, (c) communication — ours vs the solver-based benchmark,
both replayed through the simulated cluster from measured per-component
costs.

Shape claims under test (the paper's reading of Fig. 1):

* compute shrinks and communication grows with the number of CPUs;
* the benchmark keeps improving with many CPUs (compute-dominated),
  whereas ours bottoms out early at a far lower level — "our algorithm is
  faster even with significantly fewer CPUs".
"""

import numpy as np
from _common import INSTANCES, format_table, get_dec, get_local_costs, report

from repro.parallel import CPU_CLUSTER_COMM, sweep_ranks

RANKS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]


def test_fig1_report(benchmark):
    blocks = []
    for name in INSTANCES:
        dec = get_dec(name)
        ours_costs, bench_costs = get_local_costs(name)
        ours = sweep_ranks(dec, ours_costs, RANKS, CPU_CLUSTER_COMM)
        theirs = sweep_ranks(dec, bench_costs, RANKS, CPU_CLUSTER_COMM)
        rows = []
        for t_o, t_b in zip(ours, theirs):
            rows.append(
                [
                    t_o.n_ranks,
                    f"{t_o.total_s * 1e3:.4f}",
                    f"{t_o.compute_s * 1e3:.4f}",
                    f"{t_o.comm_s * 1e3:.4f}",
                    f"{t_b.total_s * 1e3:.3f}",
                    f"{t_b.compute_s * 1e3:.3f}",
                    f"{t_b.comm_s * 1e3:.4f}",
                ]
            )
        blocks.append(
            format_table(
                ["#CPUs", "ours total", "ours comp", "ours comm",
                 "bench total", "bench comp", "bench comm"],
                rows,
                title=f"Fig. 1 ({name}): local-update time per iteration [ms]",
            )
        )

        # Shape assertions.
        comp_o = [t.compute_s for t in ours]
        comm_o = [t.comm_s for t in ours]
        assert comp_o == sorted(comp_o, reverse=True)
        assert comm_o == sorted(comm_o)
        best_ours = min(t.total_s for t in ours)
        best_bench = min(t.total_s for t in theirs)
        assert best_ours < best_bench / 5, (
            f"{name}: ours should dominate the benchmark's best rank count"
        )
        # Ours reaches its optimum with far fewer CPUs than the benchmark.
        argmin_ours = RANKS[int(np.argmin([t.total_s for t in ours]))]
        argmin_bench = RANKS[int(np.argmin([t.total_s for t in theirs]))]
        assert argmin_ours <= argmin_bench

    report("fig1_local_update_scaling", "\n\n".join(blocks))

    dec = get_dec("ieee123")
    costs, _ = get_local_costs("ieee123")
    benchmark(lambda: sweep_ranks(dec, costs, RANKS, CPU_CLUSTER_COMM))
