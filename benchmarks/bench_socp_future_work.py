"""Future-work benchmark: solver-free conic ADMM on the SOCP relaxation.

Not a paper table — the paper *names* this algorithm as future research.
This bench demonstrates it and records the quantities a follow-up paper
would report: per-iteration cost of the conic local update (still
closed-form/batched), iterations to convergence, relaxation tightness, and
agreement with a general-purpose NLP reference.
"""

import time

import numpy as np
from _common import format_table, get_net, report

from repro.core import ADMMConfig
from repro.socp import ConicSolverFreeADMM, build_bfm_socp, decompose_conic


def test_socp_report(benchmark):
    rows = []
    for name in ("ieee13", "ieee123"):
        net = get_net(name)
        prob = build_bfm_socp(net, le_max=10.0)
        dec = decompose_conic(prob)
        solver = ConicSolverFreeADMM(
            dec, ADMMConfig(eps_rel=1e-4, max_iter=300_000, record_history=False)
        )
        t0 = time.perf_counter()
        res = solver.solve()
        wall = time.perf_counter() - t0
        a, b = prob.linear_system()
        linviol = float(np.abs(a @ res.x - b).max())
        coneviol = prob.cone_violation(res.x)
        slack_med = float(np.median(prob.cone_slack(res.x)))
        rows.append(
            [
                name,
                dec.n_components,
                res.iterations,
                "yes" if res.converged else "no",
                f"{wall / res.iterations * 1e6:.1f}",
                f"{linviol:.1e}",
                f"{coneviol:.1e}",
                f"{slack_med:.1e}",
            ]
        )
        assert res.converged, name
        assert coneviol < 1e-4
    text = format_table(
        ["instance", "components", "iterations", "conv", "us/iter",
         "lin viol", "cone viol", "median slack"],
        rows,
        title=(
            "Future work (paper Section VI): branch-flow SOCP via solver-free "
            "conic ADMM — every local update closed form"
        ),
    )
    report("socp_future_work", text)

    net = get_net("ieee13")
    prob = build_bfm_socp(net, le_max=10.0)
    dec = decompose_conic(prob)
    solver = ConicSolverFreeADMM(dec, ADMMConfig(max_iter=100, record_history=False))
    benchmark(lambda: solver.solve(max_iter=100))
